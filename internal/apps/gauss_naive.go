package apps

import (
	"fmt"
	"math"

	"vmprim/internal/core"
)

// GaussKernelNaive solves the same augmented system as GaussKernel but
// moves every operand through the general router, element by element:
// processor 0 fetches the pivot column one element per message and
// rebroadcasts its decision as p separate messages; the pivot row and
// multiplier column are spread with one message per (element,
// destination). Arithmetic and pivot choices are identical to
// GaussKernel — only the communication differs — so the two produce
// the same answer while the naive version pays the uncombined-message
// costs the paper's comparison quantifies.
func GaussKernelNaive(e *core.Env, w *core.Matrix, xOut *core.Vector) error {
	n := w.Rows
	if w.Cols != n+1 {
		panic(fmt.Sprintf("apps: GaussKernelNaive needs an n x n+1 matrix, got %dx%d", w.Rows, w.Cols))
	}
	e.BeginSpan("gauss(naive)")
	defer e.EndSpan()
	pid := e.P.ID()
	blk := w.L(pid)
	b := w.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()

	for k := 0; k < n; k++ {
		// Pivot search on processor 0: fetch column k rows [k, n) one
		// element at a time, pick the max magnitude, announce it.
		idx := make([][2]int, 0, n-k)
		for i := k; i < n; i++ {
			idx = append(idx, [2]int{i, k})
		}
		colVals := naiveFetchElems(e, w, idx)
		var ann []float64
		if pid == 0 {
			best, bestAbs := -1, -1.0
			for q, v := range colVals {
				if a := math.Abs(v); a > bestAbs {
					best, bestAbs = k+q, a
				}
			}
			ann = []float64{float64(best), bestAbs}
			e.P.Compute(len(colVals))
		}
		ann = naiveBcast(e, 0, ann)
		piv, mag := int(ann[0]), ann[1]
		if piv < 0 || mag <= pivotEps {
			return fmt.Errorf("apps: singular matrix at step %d", k)
		}
		naiveSwapRows(e, w, k, piv)

		// Spread the pivot row and the raw column k; every processor
		// derives its multipliers locally.
		prow := naiveSpreadRow(e, w, k, k, n+1)
		ccol := naiveSpreadCol(e, w, k, k+1, n)
		pv := naiveFetchElems(e, w, [][2]int{{k, k}})
		var pivotWords []float64
		if pid == 0 {
			pivotWords = pv
		}
		pivotWords = naiveBcast(e, 0, pivotWords)
		inv := 1 / pivotWords[0]

		// Local rank-1 update, identical arithmetic to GaussKernel.
		count := 0
		for lr := 0; lr < w.RMap.B; lr++ {
			gi := w.RMap.GlobalOf(myRow, lr)
			if gi <= k || gi >= n {
				continue
			}
			mi := ccol[lr] * inv
			row := blk[lr*b : (lr+1)*b]
			for lc := range row {
				gj := w.CMap.GlobalOf(myCol, lc)
				if gj < k || gj > n {
					continue
				}
				row[lc] -= mi * prow[lc]
				count += 2
			}
		}
		e.P.Compute(count)
	}

	// Back substitution, processor 0 driving element fetches.
	for k := n - 1; k >= 0; k-- {
		vals := naiveFetchElems(e, w, [][2]int{{k, n}, {k, k}})
		var ann []float64
		if pid == 0 {
			ann = []float64{vals[0] / vals[1]}
		}
		ann = naiveBcast(e, 0, ann)
		xk := ann[0]
		e.SetVecElem(xOut, k, xk)
		if k == 0 {
			break
		}
		// Update the rhs of rows above: each owner of (i, k) routes the
		// value to the owner of (i, n), one message per element.
		ck := naiveSpreadCol(e, w, k, 0, k)
		count := 0
		for lr := 0; lr < w.RMap.B; lr++ {
			gi := w.RMap.GlobalOf(myRow, lr)
			if gi < 0 || gi >= k {
				continue
			}
			if w.CMap.CoordOf(n) != myCol {
				continue
			}
			lc := w.CMap.LocalOf(n)
			blk[lr*b+lc] -= ck[lr] * xk
			count += 2
		}
		e.P.Compute(count)
	}
	return nil
}
