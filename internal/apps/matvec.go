// Package apps implements the three numerical algorithms the SPAA 1989
// paper uses to illustrate the four vector-matrix primitives — a
// vector-matrix multiply, a Gaussian-elimination routine, and a
// simplex algorithm — each in a primitive-based form and in the
// "naive" form (per-element access through the general router) that
// the paper's order-of-magnitude comparison is against.
//
// SPMD kernels take a *core.Env and distributed operands and run
// inside Machine.Run; the exported Solve*/Run* drivers wrap machine
// setup, data distribution, a single timed SPMD run, and result
// collection, returning both the answer and the simulated elapsed
// time.
package apps

import (
	"fmt"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/router"
	"vmprim/internal/serial"
)

// MatvecVariant selects a vector-matrix multiply implementation.
type MatvecVariant int

const (
	// MatvecPrimitive is the literal primitive composition of the
	// paper: Distribute x across the rows as a matrix, elementwise
	// multiply, Reduce the rows.
	MatvecPrimitive MatvecVariant = iota
	// MatvecFused distributes x and fuses the multiply into the local
	// reduction pass (the optimized form a library would ship): one
	// Distribute, one local loop, one Reduce.
	MatvecFused
	// MatvecNaive fetches every x element through the general router,
	// element by element, and routes every partial product to the
	// owner of its output element: no message combining anywhere.
	MatvecNaive
)

// String returns the variant name.
func (v MatvecVariant) String() string {
	switch v {
	case MatvecPrimitive:
		return "primitive"
	case MatvecFused:
		return "fused"
	case MatvecNaive:
		return "naive"
	default:
		return fmt.Sprintf("MatvecVariant(%d)", int(v))
	}
}

// VecMatKernel computes y = x*A inside an SPMD body. x must be
// col-aligned (length A.Rows); the result is row-aligned (length
// A.Cols), replicated across grid rows.
func VecMatKernel(e *core.Env, a *core.Matrix, x *core.Vector, variant MatvecVariant) *core.Vector {
	if x.Layout != core.ColAligned || x.N != a.Rows || x.Map != a.RMap {
		panic("apps: VecMatKernel needs a col-aligned x matching A's rows")
	}
	switch variant {
	case MatvecPrimitive:
		return vecMatPrimitive(e, a, x)
	case MatvecFused:
		return vecMatFused(e, a, x)
	case MatvecNaive:
		return vecMatNaive(e, a, x)
	default:
		panic("apps: unknown matvec variant")
	}
}

// vecMatPrimitive is the paper's composition, written exactly as a
// user of the four primitives would: X <- Distribute(x); P <- X .* A;
// y <- Reduce(P, rows, +).
func vecMatPrimitive(e *core.Env, a *core.Matrix, x *core.Vector) *core.Vector {
	e.BeginSpan("matvec(primitive)")
	defer e.EndSpan()
	xs := e.SpreadCols(x, a.Cols, a.CMap.Kind) // Distribute
	e.ZipMatrix(xs, a, func(xi, aij float64) float64 { return xi * aij }, 1)
	return e.ReduceRows(xs, core.OpSum, true) // Reduce
}

// vecMatFused distributes x and fuses multiply into the local
// reduction: the m/p-element local pass touches A once and allocates
// nothing matrix-shaped.
func vecMatFused(e *core.Env, a *core.Matrix, x *core.Vector) *core.Vector {
	e.BeginSpan("matvec(fused)")
	defer e.EndSpan()
	xr := x
	if !x.Replicated {
		xr = e.Distribute(x)
	}
	pid := e.P.ID()
	blk := a.L(pid)
	xp := xr.L(pid)
	b := a.CMap.B
	piece := make([]float64, b)
	myRow := e.GridRow()
	count := 0
	e.BeginSpan("local-mac")
	for lr := 0; lr < a.RMap.B; lr++ {
		if a.RMap.GlobalOf(myRow, lr) < 0 {
			continue
		}
		xi := xp[lr]
		row := blk[lr*b : (lr+1)*b]
		for lc, aij := range row {
			piece[lc] += xi * aij
		}
		count += 2 * b
	}
	e.P.Compute(count)
	e.EndSpan()
	// All-reduce the partial sums down the rows; every grid row gets y.
	out := e.TempVector(a.Cols, core.RowAligned, a.CMap.Kind, 0, true)
	sum := e.AllReduceRowsPiece(piece, core.OpSum)
	copy(out.L(pid), sum)
	return out
}

// RunVecMat is the host driver: it distributes A and x on machine m,
// runs the chosen variant once, and returns y, the simulated elapsed
// time and the run statistics.
func RunVecMat(m *hypercube.Machine, a *serial.Mat, x []float64, variant MatvecVariant) ([]float64, costmodel.Time, hypercube.Stats, error) {
	if len(x) != a.R {
		return nil, 0, hypercube.Stats{}, fmt.Errorf("apps: x length %d, want %d", len(x), a.R)
	}
	g := embed.SplitFor(m.Dim(), a.R, a.C)
	da, err := core.FromDense(g, a, embed.Block, embed.Block)
	if err != nil {
		return nil, 0, hypercube.Stats{}, err
	}
	dx, err := core.VectorFromSlice(g, x, core.ColAligned, embed.Block, 0, false)
	if err != nil {
		return nil, 0, hypercube.Stats{}, err
	}
	// The naive kernel produces y in the linear embedding; the
	// structured kernels leave it row-aligned and replicated.
	layout, repl := core.RowAligned, true
	if variant == MatvecNaive {
		layout, repl = core.Linear, false
	}
	out, err := core.NewVector(g, a.C, layout, embed.Block, 0, repl)
	if err != nil {
		return nil, 0, hypercube.Stats{}, err
	}
	elapsed, err := m.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		y := VecMatKernel(e, da, dx, variant)
		e.StoreVec(out, y)
	})
	if err != nil {
		return nil, 0, hypercube.Stats{}, err
	}
	return out.ToSlice(), elapsed, m.LastStats(), nil
}

// vecMatNaive computes y = x*A with no structured communication at
// all: every local element's x operand is fetched through the router
// as its own message, and every partial product is routed to the
// output owner as its own message. This is the straightforward
// "global address space" code the paper's order-of-magnitude
// comparison measures against.
func vecMatNaive(e *core.Env, a *core.Matrix, x *core.Vector) *core.Vector {
	e.BeginSpan("matvec(naive)")
	defer e.EndSpan()
	pid := e.P.ID()
	g := e.G
	myRow, myCol := e.GridRow(), e.GridCol()
	blk := a.L(pid)
	b := a.CMap.B

	// Fetch x_i for every distinct local row, one request per row
	// (the naive code does not even combine requests for the same i
	// across its local columns' worth of work — but one per (i) per
	// processor is already the granularity a per-element program
	// generates, since the elements of a local row share i).
	e.BeginSpan("fetch-x")
	var want []router.Msg
	var rows []int
	for lr := 0; lr < a.RMap.B; lr++ {
		gi := a.RMap.GlobalOf(myRow, lr)
		if gi < 0 {
			continue
		}
		owner := g.ProcAt(x.Map.CoordOf(gi), x.Home)
		want = append(want, router.Msg{Dst: owner, Key: gi})
		rows = append(rows, lr)
	}
	xp := x.L(pid)
	got := router.Request(e.P, e.NextTag2(), want, func(key int) []float64 {
		return []float64{xp[x.Map.LocalOf(key)]}
	})
	e.EndSpan()

	// Compute partial products and route each to the owner of y_j in
	// the vector's own linear embedding (spread over the whole
	// machine, as a naive global-address-space program would keep it),
	// one message per local element.
	out := e.TempVector(a.Cols, core.Linear, a.CMap.Kind, 0, false)
	e.BeginSpan("route-products")
	var parts []router.Msg
	flops := 0
	for wi, lr := range rows {
		xi := got[wi][0]
		row := blk[lr*b : (lr+1)*b]
		for lc, aij := range row {
			gj := a.CMap.GlobalOf(myCol, lc)
			if gj < 0 {
				continue
			}
			parts = append(parts, router.Msg{Dst: out.OwnerProcOf(gj), Key: gj, Words: []float64{xi * aij}})
			flops++
		}
	}
	e.P.Compute(flops)
	arrived := router.Route(e.P, e.NextTag(), parts)
	op := out.L(pid)
	for _, msg := range arrived {
		op[out.Map.LocalOf(msg.Key)] += msg.Words[0]
	}
	e.P.Compute(len(arrived))
	e.EndSpan()
	_ = myRow
	return out
}
