package apps

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

func randSystem(rng *rand.Rand, n int) (*serial.Mat, []float64) {
	a := serial.NewMat(n, n)
	for i := range a.A {
		a.A[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n)) // keep well-conditioned
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func randLP(rng *rand.Rand, m, n int) ([]float64, *serial.Mat, []float64) {
	a := serial.NewMat(m, n)
	for i := range a.A {
		a.A[i] = rng.Float64()*3 + 0.1
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.Float64()*8 + 1
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.Float64()*2 + 0.1
	}
	return c, a, b
}

func TestMatvecAllVariantsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, dim := range []int{0, 2, 4, 5} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, shape := range [][2]int{{4, 4}, {7, 9}, {16, 5}, {12, 12}} {
			a := serial.NewMat(shape[0], shape[1])
			for i := range a.A {
				a.A[i] = rng.NormFloat64()
			}
			x := make([]float64, shape[0])
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := serial.VecMatMul(x, a)
			for _, variant := range []MatvecVariant{MatvecPrimitive, MatvecFused, MatvecNaive} {
				y, elapsed, _, err := RunVecMat(m, a, x, variant)
				if err != nil {
					t.Fatalf("dim %d %v: %v", dim, variant, err)
				}
				for j := range want {
					if math.Abs(y[j]-want[j]) > 1e-9 {
						t.Fatalf("dim %d %v: y[%d] = %v, want %v", dim, variant, j, y[j], want[j])
					}
				}
				if dim > 0 && elapsed <= 0 {
					t.Fatalf("dim %d %v: no simulated time elapsed", dim, variant)
				}
			}
		}
	}
}

func TestMatvecNaiveIsSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := hypercube.MustNew(6, costmodel.CM2())
	a := serial.NewMat(64, 64)
	for i := range a.A {
		a.A[i] = rng.NormFloat64()
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	_, tPrim, _, err := RunVecMat(m, a, x, MatvecFused)
	if err != nil {
		t.Fatal(err)
	}
	_, tNaive, _, err := RunVecMat(m, a, x, MatvecNaive)
	if err != nil {
		t.Fatal(err)
	}
	if tNaive < 2*tPrim {
		t.Fatalf("naive (%v) not clearly slower than primitives (%v)", tNaive, tPrim)
	}
}

func TestGaussMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{1, 2, 5, 12, 17} {
			a, b := randSystem(rng, n)
			want, err := serial.GaussSolve(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for _, kinds := range [][2]embed.MapKind{
				{embed.Block, embed.Block},
				{embed.Cyclic, embed.Cyclic},
				{embed.Cyclic, embed.Block},
			} {
				x, _, err := SolveGauss(m, a, b, GaussOpts{RKind: kinds[0], CKind: kinds[1]})
				if err != nil {
					t.Fatalf("dim %d n %d kinds %v: %v", dim, n, kinds, err)
				}
				for i := range want {
					if math.Abs(x[i]-want[i]) > 1e-7 {
						t.Fatalf("dim %d n %d kinds %v: x[%d] = %v, want %v", dim, n, kinds, i, x[i], want[i])
					}
				}
			}
		}
	}
}

func TestGaussResidualSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := hypercube.MustNew(4, costmodel.CM2())
	a, b := randSystem(rng, 24)
	x, _, err := SolveGauss(m, a, b, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r := serial.Norm2(serial.Residual(a, x, b)); r > 1e-8 {
		t.Fatalf("residual %v", r)
	}
}

func TestGaussNeedsPivoting(t *testing.T) {
	// Zero in the leading diagonal position: fails without partial
	// pivoting, must succeed with it.
	m := hypercube.MustNew(2, costmodel.CM2())
	a := serial.FromRows([][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}})
	b := []float64{5, 3, 4}
	x, _, err := SolveGauss(m, a, b, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r := serial.Norm2(serial.Residual(a, x, b)); r > 1e-10 {
		t.Fatalf("residual %v", r)
	}
}

func TestGaussSingularReportsError(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	a := serial.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, _, err := SolveGauss(m, a, []float64{1, 2}, DefaultGaussOpts()); err == nil {
		t.Fatal("singular system accepted")
	}
	if _, _, err := SolveGauss(m, a, []float64{1, 2}, GaussOpts{RKind: embed.Block, CKind: embed.Block, Naive: true}); err == nil {
		t.Fatal("singular system accepted by naive kernel")
	}
}

func TestGaussNaiveMatchesPrimitive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{3, 8, 13} {
			a, b := randSystem(rng, n)
			xp, tPrim, err := SolveGauss(m, a, b, DefaultGaussOpts())
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultGaussOpts()
			opts.Naive = true
			xn, tNaive, err := SolveGauss(m, a, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range xp {
				if math.Abs(xp[i]-xn[i]) > 1e-9 {
					t.Fatalf("dim %d n %d: primitive x[%d]=%v, naive %v", dim, n, i, xp[i], xn[i])
				}
			}
			if dim >= 2 && tNaive <= tPrim {
				t.Fatalf("dim %d n %d: naive (%v) not slower than primitives (%v)", dim, n, tNaive, tPrim)
			}
		}
	}
}

func TestGaussValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if _, _, err := SolveGauss(m, serial.NewMat(2, 3), []float64{1, 2}, DefaultGaussOpts()); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := SolveGauss(m, serial.NewMat(2, 2), []float64{1}, DefaultGaussOpts()); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func TestSimplexMatchesSerialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for trial := 0; trial < 6; trial++ {
			rows := 2 + rng.Intn(6)
			cols := 2 + rng.Intn(6)
			c, a, b := randLP(rng, rows, cols)
			want, err := serial.SolveLP(c, a, b, 500)
			if err != nil {
				t.Fatal(err)
			}
			for _, naive := range []bool{false, true} {
				opts := DefaultSimplexOpts()
				opts.Naive = naive
				got, _, err := SolveSimplex(m, c, a, b, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Status != want.Status {
					t.Fatalf("dim %d trial %d naive %v: status %v, want %v", dim, trial, naive, got.Status, want.Status)
				}
				if got.Iterations != want.Iterations {
					t.Fatalf("dim %d trial %d naive %v: %d iterations, serial %d (pivot sequences diverged)",
						dim, trial, naive, got.Iterations, want.Iterations)
				}
				if want.Status != serial.Optimal {
					continue
				}
				if math.Abs(got.Z-want.Z) > 1e-9 {
					t.Fatalf("dim %d trial %d naive %v: z=%v, want %v", dim, trial, naive, got.Z, want.Z)
				}
				for j := range want.X {
					if math.Abs(got.X[j]-want.X[j]) > 1e-9 {
						t.Fatalf("dim %d trial %d naive %v: x[%d]=%v, want %v", dim, trial, naive, j, got.X[j], want.X[j])
					}
				}
			}
		}
	}
}

func TestSimplexTextbookParallel(t *testing.T) {
	m := hypercube.MustNew(3, costmodel.CM2())
	a := serial.FromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	res, elapsed, err := SolveSimplex(m, []float64{3, 5}, a, []float64{4, 12, 18}, DefaultSimplexOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serial.Optimal || math.Abs(res.Z-36) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
	if math.Abs(res.X[0]-2) > 1e-9 || math.Abs(res.X[1]-6) > 1e-9 {
		t.Fatalf("x = %v", res.X)
	}
	if elapsed <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSimplexUnboundedParallel(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	a := serial.FromRows([][]float64{{-1}})
	for _, naive := range []bool{false, true} {
		opts := DefaultSimplexOpts()
		opts.Naive = naive
		res, _, err := SolveSimplex(m, []float64{1}, a, []float64{1}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != serial.Unbounded {
			t.Fatalf("naive %v: status %v", naive, res.Status)
		}
	}
}

func TestSimplexIterLimitParallel(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	a := serial.FromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	opts := DefaultSimplexOpts()
	opts.MaxIter = 1
	res, _, err := SolveSimplex(m, []float64{3, 5}, a, []float64{4, 12, 18}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serial.IterLimit {
		t.Fatalf("status %v", res.Status)
	}
}

func TestSimplexNaiveIsSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m := hypercube.MustNew(4, costmodel.CM2())
	c, a, b := randLP(rng, 12, 16)
	_, tPrim, err := SolveSimplex(m, c, a, b, DefaultSimplexOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSimplexOpts()
	opts.Naive = true
	_, tNaive, err := SolveSimplex(m, c, a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tNaive < 2*tPrim {
		t.Fatalf("naive (%v) not clearly slower than primitives (%v)", tNaive, tPrim)
	}
}

func TestMatvecVariantStrings(t *testing.T) {
	if MatvecPrimitive.String() != "primitive" || MatvecFused.String() != "fused" || MatvecNaive.String() != "naive" {
		t.Fatal("variant strings")
	}
	if MatvecVariant(9).String() == "" {
		t.Fatal("unknown variant string")
	}
}

func TestRunVecMatValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if _, _, _, err := RunVecMat(m, serial.NewMat(3, 3), []float64{1}, MatvecFused); err == nil {
		t.Fatal("bad x length accepted")
	}
}
