package apps

import (
	"fmt"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// The simplex algorithm of the paper on the distributed dense tableau:
// every iteration is built from the four primitives — Reduce(minloc)
// over the objective row picks the entering variable, Extract +
// ZipLoc(minloc) performs the ratio test, Extract/scale/Insert
// normalizes the pivot row, and Distribute + elementwise performs the
// pivot update. Pivot rules (and the arithmetic per element) are
// identical to internal/serial's tableau simplex, so the two follow
// the same pivot sequence.

// simplexEps is the shared optimality/validity tolerance; it matches
// the serial implementation's pivotEps.
const simplexEps = 1e-9

// SimplexOpts configures a distributed simplex solve.
type SimplexOpts struct {
	// RKind and CKind choose the tableau embeddings.
	RKind, CKind embed.MapKind
	// MaxIter caps the pivot count.
	MaxIter int
	// Naive routes all communication through the general router.
	Naive bool
	// Bland selects Bland's anti-cycling pivot rule instead of the
	// Dantzig rule (not available for the naive kernel).
	Bland bool
}

// DefaultSimplexOpts returns cyclic embeddings and a generous pivot
// cap.
func DefaultSimplexOpts() SimplexOpts {
	return SimplexOpts{RKind: embed.Cyclic, CKind: embed.Cyclic, MaxIter: 10000}
}

// SimplexKernel runs the tableau simplex (Dantzig rule) on the
// distributed tableau t (m+1 rows, n+m+1 columns, as built by
// serial.NewTableau) with nVars original variables. It returns the
// final status, objective value, iteration count and basis (identical
// on every processor).
func SimplexKernel(e *core.Env, t *core.Matrix, nVars, maxIter int) (serial.LPStatus, float64, int, []int) {
	return simplexLoop(e, t, nVars, maxIter, false)
}

// SimplexKernelBland is SimplexKernel under Bland's anti-cycling rule
// (smallest-index entering column; minimum ratio with ties broken by
// smallest basis index), matching serial.SolveLPBland pivot for pivot.
func SimplexKernelBland(e *core.Env, t *core.Matrix, nVars, maxIter int) (serial.LPStatus, float64, int, []int) {
	return simplexLoop(e, t, nVars, maxIter, true)
}

func simplexLoop(e *core.Env, t *core.Matrix, nVars, maxIter int, bland bool) (serial.LPStatus, float64, int, []int) {
	e.BeginSpan("simplex")
	defer e.EndSpan()
	m := t.Rows - 1
	rhs := t.Cols - 1
	basis := make([]int, m)
	for i := range basis {
		basis[i] = nVars + i
	}
	iters := 0
	for {
		// Entering variable: Dantzig takes the most negative reduced
		// cost; Bland the smallest improving index.
		e.BeginSpan("pricing")
		var jc int
		if bland {
			obj := e.ExtractRow(t, m, true)
			_, jc = e.ZipLocVec(obj, obj, 0, rhs, func(g int, v, _ float64) (float64, bool) {
				if v < -simplexEps {
					return float64(g), true
				}
				return 0, false
			}, core.LocMin)
		} else {
			var val float64
			val, jc = e.ReduceRowLoc(t, m, 0, rhs, core.LocMin)
			if jc >= 0 && val >= -simplexEps {
				jc = -1
			}
		}
		e.EndSpan()
		if jc < 0 {
			return serial.Optimal, e.ElemAt(t, m, rhs), iters, basis
		}
		if iters >= maxIter {
			return serial.IterLimit, e.ElemAt(t, m, rhs), iters, basis
		}
		// Ratio test: Extract the entering column and the rhs column,
		// ZipLoc(minloc) over the guarded ratios.
		e.BeginSpan("ratio-test")
		col := e.ExtractCol(t, jc, true)
		rhsv := e.ExtractCol(t, rhs, true)
		ratio := func(_ int, aij, bi float64) (float64, bool) {
			if aij <= simplexEps {
				return 0, false
			}
			return bi / aij, true
		}
		minRatio, ir := e.ZipLocVec(col, rhsv, 0, m, ratio, core.LocMin)
		if ir >= 0 && bland {
			// Second stage: smallest basis index within the epsilon
			// window of the minimum ratio.
			_, ir = e.ZipLocVec(col, rhsv, 0, m, func(g int, aij, bi float64) (float64, bool) {
				r, ok := ratio(g, aij, bi)
				if !ok || r > minRatio+simplexEps {
					return 0, false
				}
				return float64(basis[g]), true
			}, core.LocMin)
		}
		e.EndSpan()
		if ir < 0 {
			return serial.Unbounded, e.ElemAt(t, m, rhs), iters, basis
		}
		// Pivot: normalize the pivot row (Extract, scale, Insert), zero
		// the multiplier at the pivot row, rank-1 update everywhere
		// else. Arithmetic matches serial.Pivot operation for
		// operation.
		e.BeginSpan("pivot")
		pivot := e.VecElemAt(col, ir)
		inv := 1 / pivot
		prow := e.ExtractRow(t, ir, true)
		e.MapVec(prow, func(_ int, v float64) float64 { return v * inv }, 1)
		e.InsertRow(t, prow, ir)
		mult := e.CopyVec(col)
		e.MapVec(mult, func(gi int, v float64) float64 {
			if gi == ir {
				return 0
			}
			return v
		}, 1)
		e.UpdateOuterSub(t, mult, prow, 0, m+1, 0, rhs+1)
		e.EndSpan()
		basis[ir] = jc
		iters++
	}
}

// SolveSimplex distributes the tableau for maximize c^T x subject to
// A x <= b, x >= 0 (b >= 0) on machine m and solves it with the
// primitive-based (or naive) kernel, returning the result and the
// simulated elapsed time.
func SolveSimplex(mach *hypercube.Machine, c []float64, a *serial.Mat, b []float64, opts SimplexOpts) (serial.LPResult, costmodel.Time, error) {
	tab, err := serial.NewTableau(c, a, b)
	if err != nil {
		return serial.LPResult{}, 0, err
	}
	g := embed.SplitFor(mach.Dim(), tab.R, tab.C)
	dt, err := core.FromDense(g, tab, opts.RKind, opts.CKind)
	if err != nil {
		return serial.LPResult{}, 0, err
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10000
	}
	var res serial.LPResult
	xOut, err := core.NewVector(g, len(c), core.Linear, embed.Block, 0, false)
	if err != nil {
		return serial.LPResult{}, 0, err
	}
	if opts.Bland && opts.Naive {
		return serial.LPResult{}, 0, fmt.Errorf("apps: Bland's rule is not implemented for the naive kernel")
	}
	kernel := SimplexKernel
	switch {
	case opts.Naive:
		kernel = SimplexKernelNaive
	case opts.Bland:
		kernel = SimplexKernelBland
	}
	elapsed, err := mach.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		status, z, iters, bas := kernel(e, dt, len(c), opts.MaxIter)
		// Pull the basic variables' values out of the rhs column.
		for i, bj := range bas {
			if bj < len(c) {
				v := e.ElemAt(dt, i, dt.Cols-1)
				e.SetVecElem(xOut, bj, v)
			}
		}
		if p.ID() == 0 {
			res.Status = status
			res.Z = z
			res.Iterations = iters
		}
	})
	if err != nil {
		return serial.LPResult{}, 0, err
	}
	res.X = xOut.ToSlice()
	return res, elapsed, nil
}
