package apps

import (
	"fmt"
	"math"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// Conjugate gradient with a diagonal (Jacobi) preconditioner for
// symmetric positive-definite systems, composed entirely from the
// primitive set: the matrix-vector product is Distribute + local
// multiply + Reduce, inner products are local folds + one-word
// all-reduces, vector updates are elementwise, and the one embedding
// change per iteration (the product comes back col-aligned, the next
// iterate needs it row-aligned) is a Realign. This is the iterative-
// solver companion to the paper's direct elimination routine, in the
// style of the contemporaneous TMC finite-element work (Johnsson &
// Mathur 1989).

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	// X is the solution iterate.
	X []float64
	// Iterations is the number of CG steps taken.
	Iterations int
	// Residual is the final 2-norm of b - A x.
	Residual float64
	// Converged reports whether Residual reached the tolerance.
	Converged bool
}

// CGOpts configures a conjugate-gradient solve.
type CGOpts struct {
	// Tol is the convergence threshold on ||r||_2 (default 1e-10).
	Tol float64
	// MaxIter caps the iterations (default 10n).
	MaxIter int
	// Kind selects the element maps (default Block).
	Kind embed.MapKind
}

// SolveCG solves the SPD system A x = b by preconditioned conjugate
// gradient on machine m, returning the result and simulated elapsed
// time.
func SolveCG(m *hypercube.Machine, a *serial.Mat, b []float64, opts CGOpts) (CGResult, costmodel.Time, error) {
	if a.R != a.C {
		return CGResult{}, 0, fmt.Errorf("apps: SolveCG needs a square matrix, got %dx%d", a.R, a.C)
	}
	if len(b) != a.R {
		return CGResult{}, 0, fmt.Errorf("apps: rhs length %d, want %d", len(b), a.R)
	}
	n := a.R
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10 * n
	}
	g := embed.SplitFor(m.Dim(), n, n)
	da, err := core.FromDense(g, a, opts.Kind, opts.Kind)
	if err != nil {
		return CGResult{}, 0, err
	}
	// All iterate vectors live row-aligned and replicated (aligned
	// with the matrix columns, as the multiply consumes them).
	newVec := func(vals []float64) (*core.Vector, error) {
		return core.VectorFromSlice(g, vals, core.RowAligned, opts.Kind, 0, true)
	}
	rb, err := newVec(b)
	if err != nil {
		return CGResult{}, 0, err
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			return CGResult{}, 0, fmt.Errorf("apps: zero diagonal at %d (Jacobi preconditioner)", i)
		}
		diag[i] = 1 / d
	}
	dinv, err := newVec(diag)
	if err != nil {
		return CGResult{}, 0, err
	}
	xOut, err := core.NewVector(g, n, core.RowAligned, opts.Kind, 0, true)
	if err != nil {
		return CGResult{}, 0, err
	}

	var res CGResult
	elapsed, err := m.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		e.BeginSpan("cg")
		defer e.EndSpan()
		x := e.TempVector(n, core.RowAligned, opts.Kind, 0, true) // x0 = 0
		r := e.CopyVec(rb)                                        // r0 = b
		z := e.CopyVec(r)
		e.ZipVec(z, dinv, func(ri, di float64) float64 { return ri * di }, 1)
		pv := e.CopyVec(z)
		rz := e.DotVec(r, z)
		iters := 0
		resid := e.Norm2Vec(r)
		for iters < opts.MaxIter && resid > opts.Tol {
			// q = A p (col-aligned), realigned to the iterate layout.
			e.BeginSpan("matvec")
			qc := MatVecKernel(e, da, pv)
			q := e.Realign(qc, core.RowAligned, opts.Kind, 0, true)
			e.EndSpan()
			e.BeginSpan("update")
			alpha := rz / e.DotVec(pv, q)
			e.AddScaledVec(x, alpha, pv)
			e.AddScaledVec(r, -alpha, q)
			e.EndSpan()
			e.BeginSpan("precond")
			z = e.CopyVec(r)
			e.ZipVec(z, dinv, func(ri, di float64) float64 { return ri * di }, 1)
			e.EndSpan()
			e.BeginSpan("update")
			rzNew := e.DotVec(r, z)
			beta := rzNew / rz
			rz = rzNew
			e.ScaleAddVec(pv, beta, z)
			resid = e.Norm2Vec(r)
			e.EndSpan()
			iters++
		}
		e.StoreVec(xOut, x)
		if p.ID() == 0 {
			res.Iterations = iters
			res.Residual = resid
			res.Converged = resid <= opts.Tol
		}
	})
	if err != nil {
		return CGResult{}, 0, err
	}
	res.X = xOut.ToSlice()
	// Report the true residual of the returned iterate.
	res.Residual = serial.Norm2(serial.Residual(a, res.X, b))
	res.Converged = res.Converged && !math.IsNaN(res.Residual)
	return res, elapsed, nil
}
