package apps

import (
	"vmprim/internal/core"
)

// MatVecKernel computes y = A*x (the dual orientation to VecMatKernel)
// inside an SPMD body: x must be row-aligned (length A.Cols, i.e.
// aligned with the matrix columns); the result is col-aligned (length
// A.Rows), replicated across grid columns. The composition mirrors the
// paper's vector-matrix multiply with the axes exchanged: Distribute x
// across the grid rows, multiply elementwise, Reduce along the
// columns.
func MatVecKernel(e *core.Env, a *core.Matrix, x *core.Vector) *core.Vector {
	if x.Layout != core.RowAligned || x.N != a.Cols || x.Map != a.CMap {
		panic("apps: MatVecKernel needs a row-aligned x matching A's columns")
	}
	e.BeginSpan("matvec(dual)")
	defer e.EndSpan()
	xr := x
	if !x.Replicated {
		xr = e.Distribute(x)
	}
	pid := e.P.ID()
	blk := a.L(pid)
	xp := xr.L(pid)
	b := a.CMap.B
	piece := make([]float64, a.RMap.B)
	myCol := e.GridCol()
	count := 0
	for lr := 0; lr < a.RMap.B; lr++ {
		row := blk[lr*b : (lr+1)*b]
		s := 0.0
		for lc, aij := range row {
			if a.CMap.GlobalOf(myCol, lc) < 0 {
				continue
			}
			s += aij * xp[lc]
			count += 2
		}
		piece[lr] = s
	}
	e.P.Compute(count)
	out := e.TempVector(a.Rows, core.ColAligned, a.RMap.Kind, 0, true)
	sum := e.AllReduceColsPiece(piece, core.OpSum)
	copy(out.L(pid), sum)
	return out
}
