package apps

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

func TestLUFactorSolveMatchesGauss(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{1, 2, 6, 13} {
			a, b := randSystem(rng, n)
			lu, err := LUFactor(m, a, DefaultGaussOpts())
			if err != nil {
				t.Fatal(err)
			}
			x, _, err := lu.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			want, err := serial.GaussSolve(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(x[i]-want[i]) > 1e-7 {
					t.Fatalf("dim %d n %d: x[%d] = %v, want %v", dim, n, i, x[i], want[i])
				}
			}
		}
	}
}

func TestLUFactorsReconstructPA(t *testing.T) {
	// P A must equal L U elementwise.
	rng := rand.New(rand.NewSource(91))
	m := hypercube.MustNew(3, costmodel.CM2())
	n := 9
	a, _ := randSystem(rng, n)
	lu, err := LUFactor(m, a, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := lu.Factors()
	perm := lu.Perm()
	l := serial.NewMat(n, n)
	u := serial.NewMat(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, w.At(i, j))
			} else {
				u.Set(i, j, w.At(i, j))
			}
		}
	}
	prod := serial.MatMul(l, u)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(prod.At(i, j)-a.At(perm[i], j)) > 1e-9 {
				t.Fatalf("(PA)[%d][%d] = %v, LU gives %v", i, j, a.At(perm[i], j), prod.At(i, j))
			}
		}
	}
}

func TestLUSolveManyRHSReusesFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	// Grain matters for the cost assertion: at n/p large enough the
	// factor's O(n^3/p) local work dominates its collectives, while
	// the solve stays O(n^2/p) — that is the point of LU.
	m := hypercube.MustNew(2, costmodel.CM2())
	n := 96
	a, _ := randSystem(rng, n)
	lu, err := LUFactor(m, a, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	var solveTime costmodel.Time
	for trial := 0; trial < 4; trial++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, st, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := serial.Norm2(serial.Residual(a, x, b)); r > 1e-8 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
		solveTime = st
	}
	// Re-solving must be much cheaper than factoring: O(n^2) vs O(n^3)
	// work plus fewer collective phases per step.
	if solveTime*2 > lu.FactorTime {
		t.Fatalf("solve (%v) not clearly cheaper than factor (%v)", solveTime, lu.FactorTime)
	}
}

func TestLUSingularAndValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if _, err := LUFactor(m, serial.NewMat(2, 3), DefaultGaussOpts()); err == nil {
		t.Fatal("non-square accepted")
	}
	sing := serial.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LUFactor(m, sing, DefaultGaussOpts()); err == nil {
		t.Fatal("singular matrix accepted")
	}
	a := serial.FromRows([][]float64{{2, 1}, {1, 3}})
	lu, err := LUFactor(m, a, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lu.Solve([]float64{1}); err == nil {
		t.Fatal("bad rhs accepted")
	}
	if lu.N() != 2 {
		t.Fatalf("N = %d", lu.N())
	}
}

func TestLUPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	m := hypercube.MustNew(3, costmodel.CM2())
	// A matrix guaranteed to pivot: reversed identity-dominant.
	n := 8
	a := serial.NewMat(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, n-1-i, float64(n+i))
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)+rng.NormFloat64()*0.1)
		}
	}
	lu, err := LUFactor(m, a, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	for _, p := range lu.Perm() {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("perm %v is not a permutation", lu.Perm())
		}
		seen[p] = true
	}
}
