package apps

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

func randTridiag(rng *rand.Rand, n int) (a, b, c, d []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	d = make([]float64, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			a[i] = rng.NormFloat64()
		}
		if i < n-1 {
			c[i] = rng.NormFloat64()
		}
		b[i] = 4 + rng.Float64() // diagonally dominant
		d[i] = rng.NormFloat64()
	}
	return
}

func TestSerialTridiagMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for _, n := range []int{1, 2, 3, 7, 20} {
		a, b, c, d := randTridiag(rng, n)
		x, err := serial.SolveTridiag(a, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		dense := serial.NewMat(n, n)
		for i := 0; i < n; i++ {
			dense.Set(i, i, b[i])
			if i > 0 {
				dense.Set(i, i-1, a[i])
			}
			if i < n-1 {
				dense.Set(i, i+1, c[i])
			}
		}
		want, err := serial.GaussSolve(dense, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				t.Fatalf("n %d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestSerialTridiagValidation(t *testing.T) {
	if _, err := serial.SolveTridiag([]float64{1}, []float64{1, 2}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("ragged bands accepted")
	}
	if _, err := serial.SolveTridiag([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err == nil {
		t.Fatal("zero pivot accepted")
	}
	if x, err := serial.SolveTridiag(nil, nil, nil, nil); err != nil || x != nil {
		t.Fatal("empty system mishandled")
	}
}

func TestDistributedTridiagMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for _, dim := range []int{0, 1, 3, 5} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{1, 2, 3, 5, 7, 8, 15, 16, 31, 50, 100} {
			a, b, c, d := randTridiag(rng, n)
			x, elapsed, err := SolveTridiag(m, a, b, c, d)
			if err != nil {
				t.Fatalf("dim %d n %d: %v", dim, n, err)
			}
			want, err := serial.SolveTridiag(a, b, c, d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(x[i]-want[i]) > 1e-8 {
					t.Fatalf("dim %d n %d: x[%d] = %v, want %v", dim, n, i, x[i], want[i])
				}
			}
			if dim > 0 && n > 1 && elapsed <= 0 {
				t.Fatal("no simulated time")
			}
		}
	}
}

func TestDistributedTridiagLogDepth(t *testing.T) {
	// Cyclic reduction's simulated time must grow ~logarithmically in
	// n once the machine is saturated: quadrupling n from an already
	// large size should much less than quadruple the time.
	m := hypercube.MustNew(5, costmodel.CM2())
	times := map[int]costmodel.Time{}
	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewSource(97))
		a, b, c, d := randTridiag(rng, n)
		_, elapsed, err := SolveTridiag(m, a, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		times[n] = elapsed
	}
	if ratio := float64(times[1024]) / float64(times[256]); ratio > 3 {
		t.Fatalf("time ratio %v for 4x n: not sublinear", ratio)
	}
}

func TestDistributedTridiagEmpty(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	x, _, err := SolveTridiag(m, nil, nil, nil, nil)
	if err != nil || len(x) != 0 {
		t.Fatalf("empty system: %v %v", x, err)
	}
	if _, _, err := SolveTridiag(m, []float64{1}, []float64{1, 2}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("ragged bands accepted")
	}
}

func TestSolveTridiagBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		var systems []TridiagSystem
		var wants [][]float64
		for si := 0; si < 11; si++ {
			n := 1 + rng.Intn(30)
			a, b, c, d := randTridiag(rng, n)
			systems = append(systems, TridiagSystem{A: a, B: b, C: c, D: d})
			want, err := serial.SolveTridiag(a, b, c, d)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, want)
		}
		got, _, err := SolveTridiagBatch(m, systems)
		if err != nil {
			t.Fatal(err)
		}
		for si := range wants {
			for i := range wants[si] {
				if math.Abs(got[si][i]-wants[si][i]) > 1e-10 {
					t.Fatalf("dim %d system %d x[%d] = %v, want %v", dim, si, i, got[si][i], wants[si][i])
				}
			}
		}
	}
}

func TestSolveTridiagBatchBeatsSequentialCR(t *testing.T) {
	// With as many systems as processors, whole-system partitioning
	// (embarrassingly parallel local Thomas solves) must beat solving
	// the systems one after another with cyclic reduction — the
	// optimal-partitioning result of the ADM literature.
	rng := rand.New(rand.NewSource(99))
	m := hypercube.MustNew(4, costmodel.CM2())
	const n = 64
	var systems []TridiagSystem
	for si := 0; si < m.P(); si++ {
		a, b, c, d := randTridiag(rng, n)
		systems = append(systems, TridiagSystem{A: a, B: b, C: c, D: d})
	}
	_, tBatch, err := SolveTridiagBatch(m, systems)
	if err != nil {
		t.Fatal(err)
	}
	var tSeq costmodel.Time
	for _, sys := range systems {
		_, el, err := SolveTridiag(m, sys.A, sys.B, sys.C, sys.D)
		if err != nil {
			t.Fatal(err)
		}
		tSeq += el
	}
	if tBatch*4 > tSeq {
		t.Fatalf("batch (%v) not clearly faster than %d sequential CR solves (%v)", tBatch, m.P(), tSeq)
	}
}

func TestSolveTridiagBatchValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if out, _, err := SolveTridiagBatch(m, nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	bad := []TridiagSystem{{A: []float64{1}, B: []float64{1, 2}, C: []float64{1, 2}, D: []float64{1, 2}}}
	if _, _, err := SolveTridiagBatch(m, bad); err == nil {
		t.Fatal("ragged system accepted")
	}
}
