package apps

import (
	"fmt"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// Dense matrix-matrix multiplication composed from the primitives, in
// the outer-product formulation: C = sum_k A[:,k] (x) B[k,:]. Each of
// the K inner-dimension steps is one ExtractCol + Distribute, one
// ExtractRow + Distribute, and one rank-1 elementwise accumulate —
// i.e. the Gaussian-elimination update step run K times without
// pivoting. This is the natural "level-3" extension of the paper's
// primitive set (the TMC BLAS work of the same period built matrix
// multiply from exactly these pieces).

// MatMulKernel computes C += A*B inside an SPMD body. A is R x K,
// B is K x C, and c must be an R x C matrix whose row map equals A's
// and whose column map equals B's.
func MatMulKernel(e *core.Env, c, a, b *core.Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("apps: MatMulKernel shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if c.RMap != a.RMap || c.CMap != b.CMap {
		panic("apps: MatMulKernel output embedding must match A's rows and B's columns")
	}
	for k := 0; k < a.Cols; k++ {
		ak := e.ExtractCol(a, k, true) // Extract + Distribute
		bk := e.ExtractRow(b, k, true) // Extract + Distribute
		e.UpdateOuterAddMul(c, ak, bk, 0, c.Rows, 0, c.Cols)
	}
}

// MatMul multiplies two dense matrices on machine m via the
// distributed outer-product algorithm and returns the product and the
// simulated elapsed time.
func MatMul(m *hypercube.Machine, a, b *serial.Mat, kind embed.MapKind) (*serial.Mat, costmodel.Time, error) {
	if a.C != b.R {
		return nil, 0, fmt.Errorf("apps: MatMul shapes %dx%d * %dx%d", a.R, a.C, b.R, b.C)
	}
	g := embed.SplitFor(m.Dim(), a.R, b.C)
	da, err := core.FromDense(g, a, kind, kind)
	if err != nil {
		return nil, 0, err
	}
	db, err := core.FromDense(g, b, kind, kind)
	if err != nil {
		return nil, 0, err
	}
	dc, err := core.NewMatrix(g, a.R, b.C, kind, kind)
	if err != nil {
		return nil, 0, err
	}
	// The kernel needs aligned embeddings: A's columns and B's rows
	// are the contracted axis and may differ in map; C aligns with A's
	// rows and B's columns, which FromDense above guarantees (same
	// kind, same grid).
	elapsed, err := m.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		MatMulKernel(e, dc, da, db)
	})
	if err != nil {
		return nil, 0, err
	}
	return dc.ToDense(), elapsed, nil
}
