package apps

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

func TestMatVecKernelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, dim := range []int{0, 2, 4, 5} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, shape := range [][2]int{{4, 4}, {9, 6}, {5, 13}} {
			rows, cols := shape[0], shape[1]
			dm := serial.NewMat(rows, cols)
			for i := range dm.A {
				dm.A[i] = rng.NormFloat64()
			}
			x := make([]float64, cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			g := embed.SplitFor(dim, rows, cols)
			a, err := core.FromDense(g, dm, embed.Block, embed.Block)
			if err != nil {
				t.Fatal(err)
			}
			xv, err := core.VectorFromSlice(g, x, core.RowAligned, embed.Block, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			out, err := core.NewVector(g, rows, core.ColAligned, embed.Block, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(func(p *hypercube.Proc) {
				e := core.NewEnv(p, g)
				e.StoreVec(out, MatVecKernel(e, a, xv))
			}); err != nil {
				t.Fatal(err)
			}
			want := serial.MatVecMul(dm, x)
			got := out.ToSlice()
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-10 {
					t.Fatalf("dim %d %dx%d: y[%d] = %v, want %v", dim, rows, cols, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSolveGaussManyMatchesPerColumnSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, shape := range [][2]int{{5, 1}, {8, 3}, {12, 5}} {
			n, nrhs := shape[0], shape[1]
			a, _ := randSystem(rng, n)
			b := serial.NewMat(n, nrhs)
			for i := range b.A {
				b.A[i] = rng.NormFloat64()
			}
			x, _, err := SolveGaussMany(m, a, b, DefaultGaussOpts())
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < nrhs; r++ {
				want, err := serial.GaussSolve(a, b.Col(r))
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if math.Abs(x.At(i, r)-want[i]) > 1e-7 {
						t.Fatalf("dim %d n %d rhs %d: x[%d] = %v, want %v", dim, n, r, i, x.At(i, r), want[i])
					}
				}
			}
		}
	}
}

func TestSolveGaussManySingular(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	a := serial.FromRows([][]float64{{1, 2}, {2, 4}})
	b := serial.NewMat(2, 2)
	if _, _, err := SolveGaussMany(m, a, b, DefaultGaussOpts()); err == nil {
		t.Fatal("singular accepted")
	}
}

func TestSolveGaussManyValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if _, _, err := SolveGaussMany(m, serial.NewMat(2, 3), serial.NewMat(2, 1), DefaultGaussOpts()); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := SolveGaussMany(m, serial.NewMat(2, 2), serial.NewMat(3, 1), DefaultGaussOpts()); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
	if _, _, err := SolveGaussMany(m, serial.NewMat(2, 2), serial.NewMat(2, 0), DefaultGaussOpts()); err == nil {
		t.Fatal("empty rhs accepted")
	}
}

func TestMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, shape := range [][3]int{{4, 4, 4}, {6, 3, 8}, {5, 9, 2}} {
			r, k, c := shape[0], shape[1], shape[2]
			a := serial.NewMat(r, k)
			b := serial.NewMat(k, c)
			for i := range a.A {
				a.A[i] = rng.NormFloat64()
			}
			for i := range b.A {
				b.A[i] = rng.NormFloat64()
			}
			for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
				got, elapsed, err := MatMul(m, a, b, kind)
				if err != nil {
					t.Fatal(err)
				}
				want := serial.MatMul(a, b)
				for i := range want.A {
					if math.Abs(got.A[i]-want.A[i]) > 1e-10 {
						t.Fatalf("dim %d %v %dx%dx%d: element %d = %v, want %v",
							dim, kind, r, k, c, i, got.A[i], want.A[i])
					}
				}
				if dim > 0 && elapsed <= 0 {
					t.Fatal("no simulated time")
				}
			}
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if _, _, err := MatMul(m, serial.NewMat(2, 3), serial.NewMat(4, 2), embed.Block); err == nil {
		t.Fatal("mismatched inner dims accepted")
	}
}

func TestSolveCGMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{2, 7, 16} {
			// SPD system: A = M^T M + n I.
			raw := serial.NewMat(n, n)
			for i := range raw.A {
				raw.A[i] = rng.NormFloat64()
			}
			a := serial.MatMul(raw.Transpose(), raw)
			for i := 0; i < n; i++ {
				a.Set(i, i, a.At(i, i)+float64(n))
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			res, elapsed, err := SolveCG(m, a, b, CGOpts{Tol: 1e-10})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("dim %d n %d: CG did not converge (residual %v after %d iters)",
					dim, n, res.Residual, res.Iterations)
			}
			want, err := serial.GaussSolve(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(res.X[i]-want[i]) > 1e-6 {
					t.Fatalf("dim %d n %d: x[%d] = %v, want %v", dim, n, i, res.X[i], want[i])
				}
			}
			if dim > 0 && elapsed <= 0 {
				t.Fatal("no simulated time")
			}
		}
	}
}

func TestSolveCGIterationCountIsSane(t *testing.T) {
	// CG on an SPD system must converge in at most n iterations in
	// exact arithmetic; allow some slack for rounding.
	rng := rand.New(rand.NewSource(74))
	m := hypercube.MustNew(4, costmodel.CM2())
	n := 24
	raw := serial.NewMat(n, n)
	for i := range raw.A {
		raw.A[i] = rng.NormFloat64()
	}
	a := serial.MatMul(raw.Transpose(), raw)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, _, err := SolveCG(m, a, b, CGOpts{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 2*n {
		t.Fatalf("CG took %d iterations (converged=%v)", res.Iterations, res.Converged)
	}
}

func TestSolveCGValidation(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	if _, _, err := SolveCG(m, serial.NewMat(2, 3), []float64{1, 2}, CGOpts{}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := SolveCG(m, serial.NewMat(2, 2), []float64{1}, CGOpts{}); err == nil {
		t.Fatal("bad rhs accepted")
	}
	zeroDiag := serial.FromRows([][]float64{{0, 1}, {1, 0}})
	if _, _, err := SolveCG(m, zeroDiag, []float64{1, 1}, CGOpts{}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestDeterministicSimulatedTime(t *testing.T) {
	// The virtual-time simulation must be bit-reproducible: the same
	// program on the same machine yields identical elapsed time and
	// identical message/word/flop counters, run after run.
	rng := rand.New(rand.NewSource(75))
	m := hypercube.MustNew(4, costmodel.CM2())
	a, b := randSystem(rng, 12)
	var elapsed []costmodel.Time
	var stats []hypercube.Stats
	for trial := 0; trial < 3; trial++ {
		_, el, err := SolveGauss(m, a, b, DefaultGaussOpts())
		if err != nil {
			t.Fatal(err)
		}
		elapsed = append(elapsed, el)
		stats = append(stats, m.LastStats())
	}
	for trial := 1; trial < 3; trial++ {
		if elapsed[trial] != elapsed[0] {
			t.Fatalf("elapsed differs across runs: %v vs %v", elapsed[trial], elapsed[0])
		}
		if stats[trial] != stats[0] {
			t.Fatalf("stats differ across runs: %+v vs %+v", stats[trial], stats[0])
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{1, 2, 5, 10} {
			a, _ := randSystem(rng, n)
			inv, _, err := Inverse(m, a, DefaultGaussOpts())
			if err != nil {
				t.Fatal(err)
			}
			prod := serial.MatMul(a, inv)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(prod.At(i, j)-want) > 1e-8 {
						t.Fatalf("dim %d n %d: (A*A^-1)[%d][%d] = %v", dim, n, i, j, prod.At(i, j))
					}
				}
			}
		}
	}
	if _, _, err := Inverse(hypercube.MustNew(1, costmodel.CM2()), serial.NewMat(2, 3), DefaultGaussOpts()); err == nil {
		t.Fatal("non-square accepted")
	}
}
