package apps

import (
	"fmt"

	"vmprim/internal/collective"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// LU factorization with partial pivoting as a reusable object: the
// elimination (the expensive O(n^3/p) part) runs once, the factors
// stay distributed on the machine, and each subsequent right-hand side
// costs only the O(n^2/p + n lg p) triangular solves. The factor phase
// is the paper's Gaussian elimination with the multipliers written
// back into the eliminated lower triangle; the solve phases are column
// sweeps of Extract + Distribute + elementwise vector updates.

// LU holds a distributed factorization P A = L U.
type LU struct {
	mach *hypercube.Machine
	g    embed.Grid
	// w holds U on and above the diagonal and the L multipliers (unit
	// diagonal implied) strictly below it.
	w *core.Matrix
	// perm[k] is the original row index now in pivot position k.
	perm []int
	// FactorTime is the simulated time of the factorization run.
	FactorTime costmodel.Time
}

// LUFactor factors a on machine mach. The returned object is bound to
// mach and may solve any number of right-hand sides.
func LUFactor(mach *hypercube.Machine, a *serial.Mat, opts GaussOpts) (*LU, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("apps: LUFactor needs a square matrix, got %dx%d", a.R, a.C)
	}
	n := a.R
	g := embed.SplitFor(mach.Dim(), n, n)
	w, err := core.FromDense(g, a, opts.RKind, opts.CKind)
	if err != nil {
		return nil, err
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	elapsed, err := mach.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		e.BeginSpan("lu-factor")
		defer e.EndSpan()
		for k := 0; k < n; k++ {
			e.BeginSpan("pivot")
			mag, piv := e.ReduceColLoc(w, k, k, n, core.LocMaxAbs)
			if piv < 0 || mag <= pivotEps {
				panic(fmt.Errorf("apps: singular matrix at step %d", k))
			}
			if piv != k {
				e.SwapRows(w, k, piv)
				if p.ID() == 0 {
					perm[k], perm[piv] = perm[piv], perm[k]
				}
			}
			e.EndSpan()
			e.BeginSpan("eliminate")
			prow := e.ExtractRow(w, k, true)
			pivot := e.VecElemAt(prow, k)
			inv := 1 / pivot
			colK := e.ExtractCol(w, k, true)
			// Multipliers: zero at and above the pivot row, a_ik/pivot
			// below. These drive the trailing update and are also the
			// L factor entries.
			mult := e.CopyVec(colK)
			e.MapVec(mult, func(gi int, v float64) float64 {
				if gi <= k {
					return 0
				}
				return v * inv
			}, 1)
			// Trailing update: columns right of k only, so column k
			// keeps its U entries at rows <= k.
			e.UpdateOuterSub(w, mult, prow, k+1, n, k+1, n)
			// Store L: column k below the diagonal becomes the
			// multipliers; at and above it keeps the extracted values.
			lcol := e.CopyVec(colK)
			e.ZipVecWith(lcol, mult, func(gi int, orig, mi float64) float64 {
				if gi <= k {
					return orig
				}
				return mi
			}, 1)
			e.InsertCol(w, lcol, k)
			e.EndSpan()
		}
	})
	if err != nil {
		return nil, err
	}
	return &LU{mach: mach, g: g, w: w, perm: perm, FactorTime: elapsed}, nil
}

// N returns the system size.
func (lu *LU) N() int { return lu.w.Rows }

// Perm returns a copy of the row permutation (perm[k] = original index
// of the row in pivot position k).
func (lu *LU) Perm() []int {
	out := make([]int, len(lu.perm))
	copy(out, lu.perm)
	return out
}

// Factors assembles the distributed factor matrix (U on and above the
// diagonal, L multipliers below) on the host, for inspection.
func (lu *LU) Factors() *serial.Mat { return lu.w.ToDense() }

// Solve solves A x = b using the stored factors: apply the row
// permutation, forward-substitute with L (unit diagonal), then
// back-substitute with U. Each phase runs n column sweeps of Extract +
// Distribute + an elementwise vector update, so a solve costs
// O(n^2/p + n lg p) simulated time — the point of factoring once. It
// returns x and the simulated time of the solve run.
func (lu *LU) Solve(b []float64) ([]float64, costmodel.Time, error) {
	n := lu.N()
	if len(b) != n {
		return nil, 0, fmt.Errorf("apps: LU.Solve rhs length %d, want %d", len(b), n)
	}
	// The permutation lives host-side; apply it to the right-hand side
	// before distributing.
	pb := make([]float64, n)
	for k := 0; k < n; k++ {
		pb[k] = b[lu.perm[k]]
	}
	y, err := core.VectorFromSlice(lu.g, pb, core.ColAligned, lu.w.RMap.Kind, 0, true)
	if err != nil {
		return nil, 0, err
	}
	xOut, err := core.NewVector(lu.g, n, core.Linear, embed.Block, 0, false)
	if err != nil {
		return nil, 0, err
	}
	w := lu.w
	elapsed, err := lu.mach.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, lu.g)
		e.BeginSpan("lu-solve")
		defer e.EndSpan()
		// Forward substitution with unit-diagonal L:
		// y_i -= L[i][k] * y_k for i > k.
		e.BeginSpan("forward-sub")
		for k := 0; k < n-1; k++ {
			yk := e.VecElemAt(y, k)
			lcol := e.ExtractCol(w, k, true)
			e.ZipVecWith(y, lcol, func(gi int, yi, lik float64) float64 {
				if gi <= k {
					return yi
				}
				return yi - lik*yk
			}, 2)
		}
		e.EndSpan()
		e.BeginSpan("back-substitute")
		defer e.EndSpan()
		// Back substitution with U: x_k = y_k / U[k][k], then
		// y_i -= U[i][k] * x_k for i < k. The owner of U[k][k] also
		// holds the replicated y, so one scalar broadcast carries the
		// finished x_k instead of separate u and y broadcasts.
		for k := n - 1; k >= 0; k-- {
			owner := w.OwnerOf(k, k)
			var quot []float64
			if e.P.ID() == owner {
				ukk := w.L(owner)[w.RMap.LocalOf(k)*w.CMap.B+w.CMap.LocalOf(k)]
				yk := y.L(owner)[y.Map.LocalOf(k)]
				quot = []float64{yk / ukk}
				e.P.Compute(1)
			}
			xk := collective.Bcast(e.P, e.P.FullMask(), e.NextTag(), owner, quot)[0]
			e.SetVecElem(xOut, k, xk)
			if k == 0 {
				break
			}
			ucol := e.ExtractCol(w, k, true)
			e.ZipVecWith(y, ucol, func(gi int, yi, uik float64) float64 {
				if gi >= k {
					return yi
				}
				return yi - uik*xk
			}, 2)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return xOut.ToSlice(), elapsed, nil
}
