package apps

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// bealeLP returns Beale's classic cycling example (maximization form):
// the Dantzig rule with smallest-index tie-breaks cycles forever on it,
// Bland's rule terminates at z* = 0.05.
func bealeLP() (c []float64, a *serial.Mat, b []float64) {
	c = []float64{0.75, -150, 0.02, -6}
	a = serial.FromRows([][]float64{
		{0.25, -60, -0.04, 9},
		{0.5, -90, -0.02, 3},
		{0, 0, 1, 0},
	})
	b = []float64{0, 0, 1}
	return
}

func TestSerialDantzigCyclesOnBeale(t *testing.T) {
	c, a, b := bealeLP()
	res, err := serial.SolveLP(c, a, b, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serial.IterLimit {
		t.Fatalf("Dantzig on Beale: %v after %d iters (expected to cycle)", res.Status, res.Iterations)
	}
}

func TestSerialBlandTerminatesOnBeale(t *testing.T) {
	c, a, b := bealeLP()
	res, err := serial.SolveLPBland(c, a, b, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serial.Optimal {
		t.Fatalf("Bland on Beale: %v", res.Status)
	}
	if math.Abs(res.Z-0.05) > 1e-9 {
		t.Fatalf("Bland optimum %v, want 0.05", res.Z)
	}
}

func TestParallelDantzigCyclesOnBealeToo(t *testing.T) {
	// Pivot-sequence identity means the distributed Dantzig kernel
	// must cycle on Beale exactly like the serial one.
	m := hypercube.MustNew(3, costmodel.CM2())
	c, a, b := bealeLP()
	opts := DefaultSimplexOpts()
	opts.MaxIter = 60
	res, _, err := SolveSimplex(m, c, a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serial.IterLimit {
		t.Fatalf("parallel Dantzig on Beale: %v after %d iters", res.Status, res.Iterations)
	}
}

func TestParallelBlandMatchesSerialOnBeale(t *testing.T) {
	m := hypercube.MustNew(3, costmodel.CM2())
	c, a, b := bealeLP()
	opts := DefaultSimplexOpts()
	opts.Bland = true
	res, _, err := SolveSimplex(m, c, a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.SolveLPBland(c, a, b, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serial.Optimal || math.Abs(res.Z-0.05) > 1e-9 {
		t.Fatalf("parallel Bland: %v z=%v", res.Status, res.Z)
	}
	if res.Iterations != want.Iterations {
		t.Fatalf("parallel Bland %d pivots, serial %d", res.Iterations, want.Iterations)
	}
}

func TestParallelBlandMatchesSerialOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for trial := 0; trial < 5; trial++ {
			rows := 2 + rng.Intn(6)
			cols := 2 + rng.Intn(6)
			c, a, b := randLP(rng, rows, cols)
			want, err := serial.SolveLPBland(c, a, b, 500)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultSimplexOpts()
			opts.Bland = true
			got, _, err := SolveSimplex(m, c, a, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status || got.Iterations != want.Iterations {
				t.Fatalf("dim %d trial %d: (%v,%d), serial (%v,%d)",
					dim, trial, got.Status, got.Iterations, want.Status, want.Iterations)
			}
			if want.Status == serial.Optimal && math.Abs(got.Z-want.Z) > 1e-9 {
				t.Fatalf("dim %d trial %d: z=%v, want %v", dim, trial, got.Z, want.Z)
			}
		}
	}
}

func TestBlandNaiveCombinationRejected(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	c, a, b := bealeLP()
	opts := DefaultSimplexOpts()
	opts.Bland = true
	opts.Naive = true
	if _, _, err := SolveSimplex(m, c, a, b, opts); err == nil {
		t.Fatal("Bland+Naive accepted")
	}
}

func TestBlandAndDantzigAgreeOnNonDegenerate(t *testing.T) {
	// Different pivot paths, same optimum.
	rng := rand.New(rand.NewSource(81))
	m := hypercube.MustNew(3, costmodel.CM2())
	c, a, b := randLP(rng, 6, 9)
	optsD := DefaultSimplexOpts()
	resD, _, err := SolveSimplex(m, c, a, b, optsD)
	if err != nil {
		t.Fatal(err)
	}
	optsB := DefaultSimplexOpts()
	optsB.Bland = true
	resB, _, err := SolveSimplex(m, c, a, b, optsB)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Status != serial.Optimal || resB.Status != serial.Optimal {
		t.Fatalf("statuses %v / %v", resD.Status, resB.Status)
	}
	if math.Abs(resD.Z-resB.Z) > 1e-8 {
		t.Fatalf("objectives differ: %v vs %v", resD.Z, resB.Z)
	}
}

func TestDeterminantMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, dim := range []int{0, 2, 4} {
		m := hypercube.MustNew(dim, costmodel.CM2())
		for _, n := range []int{1, 2, 5, 9} {
			a, _ := randSystem(rng, n)
			got, elapsed, err := Determinant(m, a, DefaultGaussOpts())
			if err != nil {
				t.Fatal(err)
			}
			want, err := serial.Determinant(a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6*math.Abs(want) {
				t.Fatalf("dim %d n %d: det %v, want %v", dim, n, got, want)
			}
			if dim > 0 && elapsed <= 0 {
				t.Fatal("no simulated time")
			}
		}
	}
}

func TestDeterminantSingularIsZero(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	a := serial.FromRows([][]float64{{1, 2}, {2, 4}})
	got, _, err := Determinant(m, a, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("det = %v, want 0", got)
	}
	want, err := serial.Determinant(a)
	if err != nil || want != 0 {
		t.Fatalf("serial det = %v (%v)", want, err)
	}
}

func TestDeterminantKnownValues(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	// det = 1*4 - 2*3 = -2.
	a := serial.FromRows([][]float64{{1, 2}, {3, 4}})
	got, _, err := Determinant(m, a, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("det = %v, want -2", got)
	}
	if _, _, err := Determinant(m, serial.NewMat(2, 3), DefaultGaussOpts()); err == nil {
		t.Fatal("non-square accepted")
	}
}
