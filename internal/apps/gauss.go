package apps

import (
	"fmt"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// The Gaussian-elimination routine of the paper, on the augmented
// system [A | b]: per elimination step, a Reduce(maxabsloc) pivot
// search down column k, a row swap composed of Extracts and Inserts,
// an Extract + Distribute of the pivot row and of the multiplier
// column, and a rank-1 elementwise update — all four primitives, every
// step. Back substitution runs as n column updates using the same
// Extract/Distribute machinery.

// GaussOpts configures a distributed Gaussian elimination solve.
type GaussOpts struct {
	// RKind and CKind choose the row/column embeddings. Cyclic row
	// embedding keeps the shrinking active submatrix balanced over the
	// grid (ablation A3); Block is the simple consecutive embedding.
	RKind, CKind embed.MapKind
	// Naive routes all communication through the general router,
	// element by element, instead of using the primitives.
	Naive bool
}

// DefaultGaussOpts returns the configuration used by the paper-shaped
// experiments: cyclic rows and columns, primitives on.
func DefaultGaussOpts() GaussOpts {
	return GaussOpts{RKind: embed.Cyclic, CKind: embed.Cyclic}
}

// pivotEps matches the serial elimination's singularity threshold.
const pivotEps = 0.0

// GaussKernel runs forward elimination with partial pivoting and back
// substitution on the distributed augmented matrix w (n rows, n+1
// columns) and returns the solution through the provided linear-layout
// host vector xOut (length n). It reports an error (identically on
// every processor) if the matrix is numerically singular.
func GaussKernel(e *core.Env, w *core.Matrix, xOut *core.Vector) error {
	n := w.Rows
	if w.Cols != n+1 {
		panic(fmt.Sprintf("apps: GaussKernel needs an n x n+1 augmented matrix, got %dx%d", w.Rows, w.Cols))
	}
	e.BeginSpan("gauss")
	defer e.EndSpan()
	// Forward elimination.
	for k := 0; k < n; k++ {
		// Pivot search: Reduce(maxabsloc) over column k, rows [k, n).
		e.BeginSpan("pivot")
		mag, piv := e.ReduceColLoc(w, k, k, n, core.LocMaxAbs)
		if piv < 0 || mag <= pivotEps {
			e.EndSpan()
			return fmt.Errorf("apps: singular matrix at step %d", k)
		}
		if piv != k {
			e.SwapRows(w, k, piv) // Extract x2, Insert x2
		}
		e.EndSpan()
		// Pivot row and multiplier column, both replicated (Extract +
		// Distribute fused).
		e.BeginSpan("eliminate")
		prow := e.ExtractRow(w, k, true)
		pivot := e.VecElemAt(prow, k)
		mcol := e.ExtractCol(w, k, true)
		inv := 1 / pivot
		e.MapVec(mcol, func(gi int, v float64) float64 {
			if gi <= k {
				return 0 // rows at or above the pivot are untouched
			}
			return v * inv
		}, 1)
		// Rank-1 elementwise update of the active submatrix. Column k
		// is included so the eliminated entries become exact zeros.
		e.UpdateOuterSub(w, mcol, prow, k+1, n, k, n+1)
		e.EndSpan()
	}

	// Back substitution: x_k = w[k][n] / w[k][k], then eliminate
	// column k from the right-hand sides of rows above: one Extract +
	// Distribute of column k and a single-column elementwise update.
	e.BeginSpan("back-substitute")
	defer e.EndSpan()
	ones := e.TempVector(n+1, core.RowAligned, w.CMap.Kind, 0, true)
	e.MapVec(ones, func(int, float64) float64 { return 1 }, 0)
	for k := n - 1; k >= 0; k-- {
		xk := e.ElemAt(w, k, n) / e.ElemAt(w, k, k)
		e.SetVecElem(xOut, k, xk)
		if k == 0 {
			break
		}
		ck := e.ExtractCol(w, k, true)
		e.UpdateOuter(w, ck, ones, 0, k, n, n+1,
			func(aij, ci, _ float64) float64 { return aij - ci*xk }, 2)
	}
	return nil
}

// SolveGauss distributes the augmented system [A | b] on machine m and
// solves it with GaussKernel (or the naive router-based kernel),
// returning the solution and the simulated elapsed time.
func SolveGauss(m *hypercube.Machine, a *serial.Mat, b []float64, opts GaussOpts) ([]float64, costmodel.Time, error) {
	if a.R != a.C {
		return nil, 0, fmt.Errorf("apps: SolveGauss needs a square matrix, got %dx%d", a.R, a.C)
	}
	if len(b) != a.R {
		return nil, 0, fmt.Errorf("apps: rhs length %d, want %d", len(b), a.R)
	}
	n := a.R
	g := embed.SplitFor(m.Dim(), n, n+1)
	aug := serial.NewMat(n, n+1)
	for i := 0; i < n; i++ {
		copy(aug.A[i*(n+1):], a.A[i*n:(i+1)*n])
		aug.Set(i, n, b[i])
	}
	w, err := core.FromDense(g, aug, opts.RKind, opts.CKind)
	if err != nil {
		return nil, 0, err
	}
	xOut, err := core.NewVector(g, n, core.Linear, embed.Block, 0, false)
	if err != nil {
		return nil, 0, err
	}
	kernel := GaussKernel
	if opts.Naive {
		kernel = GaussKernelNaive
	}
	elapsed, err := m.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		if kerr := kernel(e, w, xOut); kerr != nil {
			panic(kerr)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return xOut.ToSlice(), elapsed, nil
}

// Determinant computes det(A) on machine mach by distributed Gaussian
// elimination with partial pivoting: every processor tracks the
// product of the broadcast pivots and the swap parity, so the result
// needs no extra communication beyond the elimination itself.
func Determinant(mach *hypercube.Machine, a *serial.Mat, opts GaussOpts) (float64, costmodel.Time, error) {
	if a.R != a.C {
		return 0, 0, fmt.Errorf("apps: Determinant needs a square matrix, got %dx%d", a.R, a.C)
	}
	n := a.R
	g := embed.SplitFor(mach.Dim(), n, n)
	w, err := core.FromDense(g, a, opts.RKind, opts.CKind)
	if err != nil {
		return 0, 0, err
	}
	var det float64
	elapsed, err := mach.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		d := 1.0
		for k := 0; k < n; k++ {
			mag, piv := e.ReduceColLoc(w, k, k, n, core.LocMaxAbs)
			if piv < 0 || mag <= pivotEps {
				d = 0
				break
			}
			if piv != k {
				e.SwapRows(w, k, piv)
				d = -d
			}
			prow := e.ExtractRow(w, k, true)
			pivot := e.VecElemAt(prow, k)
			d *= pivot
			mcol := e.ExtractCol(w, k, true)
			inv := 1 / pivot
			e.MapVec(mcol, func(gi int, v float64) float64 {
				if gi <= k {
					return 0
				}
				return v * inv
			}, 1)
			e.UpdateOuterSub(w, mcol, prow, k+1, n, k, n)
		}
		if p.ID() == 0 {
			det = d
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return det, elapsed, nil
}
