package apps

import (
	"vmprim/internal/core"
	"vmprim/internal/serial"
)

// SimplexKernelNaive runs the same tableau simplex as SimplexKernel
// with identical pivot rules and per-element arithmetic, but with all
// communication through the general router: processor 0 fetches the
// objective row and the ratio-test columns element by element and
// rebroadcasts each decision as p separate messages; the pivot row and
// entering column are spread one message per (element, destination).
func SimplexKernelNaive(e *core.Env, t *core.Matrix, nVars, maxIter int) (serial.LPStatus, float64, int, []int) {
	e.BeginSpan("simplex(naive)")
	defer e.EndSpan()
	m := t.Rows - 1
	rhs := t.Cols - 1
	pid := e.P.ID()
	blk := t.L(pid)
	b := t.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	basis := make([]int, m)
	for i := range basis {
		basis[i] = nVars + i
	}
	// fetchScalar reads one tableau element on processor 0 and
	// rebroadcasts it naively.
	fetchScalar := func(i, j int) float64 {
		vals := naiveFetchElems(e, t, [][2]int{{i, j}})
		var words []float64
		if pid == 0 {
			words = vals
		}
		return naiveBcast(e, 0, words)[0]
	}
	iters := 0
	for {
		// Entering variable on processor 0.
		idx := make([][2]int, rhs)
		for j := 0; j < rhs; j++ {
			idx[j] = [2]int{m, j}
		}
		objRow := naiveFetchElems(e, t, idx)
		var ann []float64
		if pid == 0 {
			jc, best := -1, -simplexEps
			for j, v := range objRow {
				if v < best {
					jc, best = j, v
				}
			}
			ann = []float64{float64(jc)}
			e.P.Compute(rhs)
		}
		jc := int(naiveBcast(e, 0, ann)[0])
		if jc < 0 {
			return serial.Optimal, fetchScalar(m, rhs), iters, basis
		}
		if iters >= maxIter {
			return serial.IterLimit, fetchScalar(m, rhs), iters, basis
		}
		// Ratio test on processor 0.
		idx = idx[:0]
		for i := 0; i < m; i++ {
			idx = append(idx, [2]int{i, jc})
		}
		for i := 0; i < m; i++ {
			idx = append(idx, [2]int{i, rhs})
		}
		vals := naiveFetchElems(e, t, idx)
		if pid == 0 {
			ir, bestRatio := -1, 0.0
			for i := 0; i < m; i++ {
				aij := vals[i]
				if aij <= simplexEps {
					continue
				}
				ratio := vals[m+i] / aij
				if ir < 0 || ratio < bestRatio {
					ir, bestRatio = i, ratio
				}
			}
			ann = []float64{float64(ir)}
			e.P.Compute(2 * m)
		}
		ir := int(naiveBcast(e, 0, ann)[0])
		if ir < 0 {
			return serial.Unbounded, fetchScalar(m, rhs), iters, basis
		}
		// Pivot: spread the raw pivot row and entering column, fetch
		// the pivot element, update locally with the same arithmetic
		// as SimplexKernel/serial.Pivot.
		pivot := fetchScalar(ir, jc)
		inv := 1 / pivot
		prow := naiveSpreadRow(e, t, ir, 0, rhs+1)
		fcol := naiveSpreadCol(e, t, jc, 0, m+1)
		count := 0
		for lr := 0; lr < t.RMap.B; lr++ {
			gi := t.RMap.GlobalOf(myRow, lr)
			if gi < 0 {
				continue
			}
			row := blk[lr*b : (lr+1)*b]
			if gi == ir {
				for lc := range row {
					if t.CMap.GlobalOf(myCol, lc) < 0 {
						continue
					}
					row[lc] = prow[lc] * inv
					count++
				}
				continue
			}
			f := fcol[lr]
			for lc := range row {
				if t.CMap.GlobalOf(myCol, lc) < 0 {
					continue
				}
				row[lc] -= f * (prow[lc] * inv)
				count += 2
			}
		}
		e.P.Compute(count)
		basis[ir] = jc
		iters++
	}
}
