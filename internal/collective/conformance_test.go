package collective

import (
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
	"vmprim/internal/obs"
)

// The conformance contract: on a run that matches the cost model —
// simultaneous entry, structured traffic — every collective's measured
// inclusive time lands on the analytic prediction. These tests run the
// collectives under critical-path tracing and read the report back.

func critMachine(t *testing.T, d int, params costmodel.Params) *hypercube.Machine {
	t.Helper()
	m, err := hypercube.New(d, params)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableCritPath(true)
	return m
}

func TestConformanceStructuredCollectivesNearOne(t *testing.T) {
	// Each collective runs alone from t=0 — simultaneous entry is the
	// model's premise; skewed entry is tested separately below.
	bodies := map[string]func(p *hypercube.Proc, full int, data []float64){
		"bcast": func(p *hypercube.Proc, full int, data []float64) {
			p.Recycle(Bcast(p, full, 1, 0, data))
		},
		"reduce": func(p *hypercube.Proc, full int, data []float64) {
			if out := Reduce(p, full, 1, 0, data, Sum); out != nil {
				p.Recycle(out)
			}
		},
		"reduce-scatter": func(p *hypercube.Proc, full int, data []float64) {
			piece, _ := ReduceScatter(p, full, 1, data, Sum)
			p.Recycle(piece)
		},
		"all-gather": func(p *hypercube.Proc, full int, data []float64) {
			p.Recycle(AllGather(p, full, 1, data[:4]))
		},
		"all-reduce": func(p *hypercube.Proc, full int, data []float64) {
			p.Recycle(AllReduce(p, full, 1, data, Sum))
		},
		"scan": func(p *hypercube.Proc, full int, data []float64) {
			p.Recycle(ScanInclusive(p, full, 1, data, Sum))
		},
	}
	for _, params := range []costmodel.Params{costmodel.CM2(), costmodel.IPSC()} {
		for name, body := range bodies {
			m := critMachine(t, 4, params)
			full := m.P() - 1
			if _, err := m.Run(func(p *hypercube.Proc) {
				n := 64
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(p.ID()*n + i)
				}
				body(p, full, data)
			}); err != nil {
				t.Fatal(err)
			}
			cp := m.CritPath()
			if cp == nil {
				t.Fatal("no critical path recorded")
			}
			if err := cp.Check(); err != nil {
				t.Fatal(err)
			}
			var e *obs.ConformanceEntry
			for i := range cp.Conformance {
				if cp.Conformance[i].Name == name {
					e = &cp.Conformance[i]
				}
			}
			if e == nil {
				t.Errorf("%v: no conformance entry for %q (got %v)", params, name, cp.Conformance)
				continue
			}
			if e.Ratio < 0.9 || e.Ratio > 1.1 {
				t.Errorf("%v: %s measured/predicted = %.3f, want ~1.0 (measured %.1f predicted %.1f)",
					params, name, e.Ratio, e.MeasuredUs, e.PredictedUs)
			}
			if e.Flagged {
				t.Errorf("%v: %s flagged at ratio %.3f", params, name, e.Ratio)
			}
		}
	}
}

// TestConformanceBcastExact: the binomial broadcast with simultaneous
// entry matches the model to the bit, not just within tolerance.
func TestConformanceBcastExact(t *testing.T) {
	m := critMachine(t, 3, costmodel.CM2())
	full := m.P() - 1
	if _, err := m.Run(func(p *hypercube.Proc) {
		data := make([]float64, 32)
		p.Recycle(Bcast(p, full, 1, 0, data))
	}); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	var got *obs.ConformanceEntry
	for i := range cp.Conformance {
		if cp.Conformance[i].Name == "bcast" {
			got = &cp.Conformance[i]
		}
	}
	if got == nil {
		t.Fatalf("no bcast entry in %v", cp.Conformance)
	}
	if got.Ratio != 1 {
		t.Fatalf("bcast ratio = %v, want exactly 1 (measured %g predicted %g)",
			got.Ratio, got.MeasuredUs, got.PredictedUs)
	}
	// And the prediction is the documented closed form.
	want := float64(costmodel.PredictBcast(costmodel.CM2(), 3, 32))
	if got.PredictedUs != want {
		t.Fatalf("predicted = %g, want %g", got.PredictedUs, want)
	}
}

// TestConformanceSkewShowsUpInMeasured: a member that enters a
// collective late inflates the slowest measured time while the
// prediction stays put — the ratio is how the report surfaces skew.
func TestConformanceSkewShowsUpInMeasured(t *testing.T) {
	m := critMachine(t, 2, costmodel.CM2())
	full := m.P() - 1
	if _, err := m.Run(func(p *hypercube.Proc) {
		if p.ID() == 3 {
			p.Compute(100000) // arrive very late
		}
		data := make([]float64, 16)
		p.Recycle(AllReduce(p, full, 1, data, Sum))
	}); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	var e *obs.ConformanceEntry
	for i := range cp.Conformance {
		if cp.Conformance[i].Name == "all-reduce" {
			e = &cp.Conformance[i]
		}
	}
	if e == nil {
		t.Fatal("no all-reduce entry")
	}
	if e.Ratio <= cp.Threshold || !e.Flagged {
		t.Fatalf("skewed all-reduce should be flagged: %+v (threshold %g)", e, cp.Threshold)
	}
}

// TestConformanceAllPort: the all-port collectives predict only on the
// all-port machine and land near the model there.
func TestConformanceAllPort(t *testing.T) {
	params := costmodel.CM2()
	params.AllPorts = true
	m := critMachine(t, 3, params)
	full := m.P() - 1
	if _, err := m.Run(func(p *hypercube.Proc) {
		data := make([]float64, 33) // divisible by k=3
		_ = BcastAllPort(p, full, 1, 0, data)
	}); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	var e *obs.ConformanceEntry
	for i := range cp.Conformance {
		if cp.Conformance[i].Name == "bcast-allport" {
			e = &cp.Conformance[i]
		}
	}
	if e == nil {
		t.Fatalf("no bcast-allport entry in %v", cp.Conformance)
	}
	if e.Flagged {
		t.Fatalf("all-port bcast flagged: %+v", e)
	}

	// One-port machine: no prediction, so no entry at all.
	m1 := critMachine(t, 3, costmodel.CM2())
	if _, err := m1.Run(func(p *hypercube.Proc) {
		data := make([]float64, 33)
		_ = BcastAllPort(p, full, 1, 0, data)
	}); err != nil {
		t.Fatal(err)
	}
	for _, e := range m1.CritPath().Conformance {
		if e.Name == "bcast-allport" {
			t.Fatalf("one-port machine recorded an all-port prediction: %+v", e)
		}
	}
}
