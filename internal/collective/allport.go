package collective

import (
	"fmt"

	"vmprim/internal/costmodel"
	"vmprim/internal/gray"
	"vmprim/internal/hypercube"
)

// All-port broadcast after Johnsson & Ho ("Optimum Broadcasting and
// Personalized Communication in Hypercubes", 1987/89): the payload is
// split into k = popcount(mask) pieces and piece j travels down its
// own binomial spanning tree whose dimension order is the rotation
// (j, j+1, ..., j+k-1). At every one of the k steps the k trees use k
// distinct dimensions, so on a machine with concurrent communication
// on all ports each step costs one start-up plus one piece transfer:
// about k*tau + n*t_c in total, a factor-k bandwidth win over the
// one-port binomial tree's k*tau + k*n*t_c. On a one-port machine the
// same schedule serializes and is strictly worse than Bcast — use it
// only when Params.AllPorts is set (ablation A4 quantifies both).

// BcastAllPort broadcasts data from the subcube member with relative
// address rootRel using k rotated edge-disjoint binomial trees.
// len(data) must be divisible by k (and may be zero).
func BcastAllPort(p *hypercube.Proc, mask, tag, rootRel int, data []float64) []float64 {
	p.BeginSpan("bcast-allport")
	defer p.EndSpan()
	p.NoteCollective("bcast-allport", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() && p.Params().AllPorts {
		// The analytic cost assumes concurrent ports; on a one-port
		// machine the schedule serializes by design, so no prediction
		// is recorded there (the flag would fire spuriously).
		p.SpanPredict(costmodel.PredictBcastAllPort(p.Params(), k, len(data)))
	}
	if k == 0 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	r := rel(p, mask) ^ rootRel
	var n int
	if r == 0 {
		n = len(data)
		if n%k != 0 {
			panic(fmt.Sprintf("collective: BcastAllPort length %d not divisible by %d trees", n, k))
		}
	}
	// Piece j of the payload, nil while not yet received. The root
	// holds all pieces from the start.
	pieces := make([][]float64, k)
	if r == 0 {
		sz := n / k
		for j := 0; j < k; j++ {
			// Copy into non-nil slices: nil marks "not yet received",
			// and zero-length pieces (n == 0) must still count as held.
			pieces[j] = append([]float64{}, data[j*sz:(j+1)*sz]...)
		}
	}
	// maskBefore[j] accumulates the rel-space bits of the dimensions
	// tree j has already processed.
	maskBefore := make([]int, k)
	dims := make([]int, k)
	payloads := make([][]float64, k)
	for s := 0; s < k; s++ {
		// Slot i of the exchange carries whatever some tree sends on
		// physical dimension ds[i] this step; tree j uses rel-bit
		// (j+s) mod k.
		for i := 0; i < k; i++ {
			dims[i] = ds[i]
			payloads[i] = nil
		}
		type recvSlot struct{ tree, slot int }
		var recvs []recvSlot
		for j := 0; j < k; j++ {
			bitIdx := (j + s) % k
			bit := 1 << bitIdx
			switch {
			case r&^maskBefore[j] == 0 && pieces[j] != nil:
				// Holder in tree j: forward the piece along this
				// step's dimension.
				payloads[bitIdx] = pieces[j]
			case r&^(maskBefore[j]|bit) == 0 && r&bit != 0:
				recvs = append(recvs, recvSlot{tree: j, slot: bitIdx})
			}
			maskBefore[j] |= bit
		}
		got := p.ExchangeAll(dims, subTag(tag, s), payloads)
		for _, rs := range recvs {
			if len(got[rs.slot]) > 0 || lenPieceZero(pieces, r) {
				pieces[rs.tree] = got[rs.slot]
			}
		}
	}
	// Reassemble. Piece sizes are uniform; learn the size from any
	// received piece (the root knows its own).
	sz := 0
	for _, pc := range pieces {
		if pc != nil {
			sz = len(pc)
			break
		}
	}
	out := make([]float64, 0, sz*k)
	for j := 0; j < k; j++ {
		if pieces[j] == nil {
			panic("collective: BcastAllPort missing a piece (inconsistent rootRel?)")
		}
		out = append(out, pieces[j]...)
	}
	return out
}

// lenPieceZero reports whether this broadcast carries zero-length
// pieces (empty payload), in which case an empty receive is still a
// valid piece.
func lenPieceZero(pieces [][]float64, r int) bool {
	for _, pc := range pieces {
		if pc != nil {
			return len(pc) == 0
		}
	}
	// No piece seen yet: only possible mid-broadcast for non-roots; an
	// empty exchange result then means "no data on this slot" for
	// nonzero-length broadcasts and "the piece" for zero-length ones.
	// Zero-length broadcasts still deliver: treat empty as a piece.
	return true
}

// ReduceAllPort combines data across the subcube with comb and
// delivers the full combined vector to the member with relative
// address rootRel, using the time-reversed rotated-tree schedule of
// BcastAllPort: piece j of every member's contribution climbs tree j
// toward the root, combining at every internal node, and the k trees
// use k distinct dimensions at every step. On the all-port machine the
// cost is about k*tau + n*t_c (+ n flops of combining) versus the
// binomial tree's k*tau + k*n*t_c. Non-roots return nil. len(data)
// must be divisible by k on every member.
func ReduceAllPort(p *hypercube.Proc, mask, tag, rootRel int, data []float64, comb Combiner) []float64 {
	p.BeginSpan("reduce-allport")
	defer p.EndSpan()
	p.NoteCollective("reduce-allport", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() && p.Params().AllPorts {
		p.SpanPredict(costmodel.PredictReduceAllPort(p.Params(), k, len(data)))
	}
	if k == 0 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	if len(data)%k != 0 {
		panic(fmt.Sprintf("collective: ReduceAllPort length %d not divisible by %d trees", len(data), k))
	}
	r := rel(p, mask) ^ rootRel
	sz := len(data) / k
	pieces := make([][]float64, k)
	for j := 0; j < k; j++ {
		pieces[j] = append([]float64{}, data[j*sz:(j+1)*sz]...)
	}
	// maskBefore[j] for broadcast step s holds bits pi_j(0..s-1); the
	// reduce runs the steps in reverse order, so precompute the masks.
	masksAt := make([][]int, k) // masksAt[j][s]
	for j := 0; j < k; j++ {
		masksAt[j] = make([]int, k)
		acc := 0
		for s := 0; s < k; s++ {
			masksAt[j][s] = acc
			acc |= 1 << ((j + s) % k)
		}
	}
	dims := make([]int, k)
	payloads := make([][]float64, k)
	for s := k - 1; s >= 0; s-- {
		for i := 0; i < k; i++ {
			dims[i] = ds[i]
			payloads[i] = nil
		}
		type recvSlot struct{ tree, slot int }
		var recvs []recvSlot
		for j := 0; j < k; j++ {
			bitIdx := (j + s) % k
			bit := 1 << bitIdx
			before := masksAt[j][s]
			switch {
			case r&^(before|bit) == 0 && r&bit != 0:
				// The broadcast-receiver of step s sends its
				// accumulated piece up the tree.
				payloads[bitIdx] = pieces[j]
			case r&^before == 0:
				recvs = append(recvs, recvSlot{tree: j, slot: bitIdx})
			}
		}
		got := p.ExchangeAll(dims, subTag(tag, s), payloads)
		for _, rs := range recvs {
			if len(got[rs.slot]) != len(pieces[rs.tree]) {
				panic("collective: ReduceAllPort piece length mismatch")
			}
			comb(pieces[rs.tree], got[rs.slot])
			p.Compute(len(pieces[rs.tree]))
			p.Recycle(got[rs.slot])
		}
	}
	if r != 0 {
		return nil
	}
	out := make([]float64, 0, sz*k)
	for j := 0; j < k; j++ {
		out = append(out, pieces[j]...)
	}
	return out
}
