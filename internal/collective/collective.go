// Package collective implements the structured communication
// operations on Boolean subcubes that the four vector-matrix
// primitives are built from: one-to-all broadcast (binomial tree and
// scatter/all-gather for long vectors), reduction (binomial tree,
// recursive-halving reduce-scatter, and all-reduce), gather/scatter,
// all-to-all personalized communication, and parallel prefix (scan).
//
// Every operation works on the subcube spanned by a dimension mask: the
// set of processors whose addresses agree with the caller's outside the
// mask. All processors of a subcube must call the operation together
// with consistent arguments (SPMD). Within a subcube a processor is
// identified by its relative address: its address bits at the mask's
// set positions, compacted so that the lowest masked dimension is bit
// zero (see gray.Compact).
//
// Cost shapes (k = popcount(mask), n = data words, tau = start-up,
// t_c = per-word transfer):
//
//	Bcast        k*(tau + n*t_c)            — latency-optimal
//	BcastLarge   ~2k*tau + 2n*t_c           — bandwidth-optimal, long n
//	Reduce       k*(tau + n*t_c) + k*n flop
//	ReduceScatter/AllGather  k*tau + n*t_c*(1-1/2^k) (+ n flop)
//	AllReduce (halving+doubling) ~2k*tau + 2n*t_c + n flop
//	AllToAll     k*(tau + (n/2)*t_c)
//
// The recursive-halving forms are what make the Reduce and Distribute
// primitives work-optimal for m > p lg p in the SPAA 1989 analysis.
package collective

import (
	"fmt"

	"vmprim/internal/costmodel"
	"vmprim/internal/gray"
	"vmprim/internal/hypercube"
)

// A Combiner merges src into dst elementwise; len(dst) == len(src).
// Combiners must be associative and commutative up to floating-point
// rounding; collectives apply them in a fixed dimension order so
// distributed results are deterministic run-to-run.
type Combiner func(dst, src []float64)

// Sum adds src into dst.
func Sum(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// Prod multiplies dst by src.
func Prod(dst, src []float64) {
	for i, v := range src {
		dst[i] *= v
	}
}

// Max keeps the elementwise maximum in dst.
func Max(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// Min keeps the elementwise minimum in dst.
func Min(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// The *Loc combiners operate on (value, index) pairs packed as
// consecutive words: data[2i] is the value, data[2i+1] the index. Ties
// resolve to the smaller index, matching the pivot-selection and
// ratio-test semantics of Gaussian elimination and simplex.

// MaxLoc keeps the pair with the larger value (smaller index on ties).
func MaxLoc(dst, src []float64) {
	for i := 0; i+1 < len(src); i += 2 {
		if src[i] > dst[i] || (src[i] == dst[i] && src[i+1] < dst[i+1]) {
			dst[i], dst[i+1] = src[i], src[i+1]
		}
	}
}

// MinLoc keeps the pair with the smaller value (smaller index on ties).
func MinLoc(dst, src []float64) {
	for i := 0; i+1 < len(src); i += 2 {
		if src[i] < dst[i] || (src[i] == dst[i] && src[i+1] < dst[i+1]) {
			dst[i], dst[i+1] = src[i], src[i+1]
		}
	}
}

// rel returns the caller's relative address within the masked subcube.
func rel(p *hypercube.Proc, mask int) int {
	return gray.Compact(p.ID(), mask)
}

// subTag derives a distinct protocol tag for step s of a collective
// invoked with base tag.
func subTag(tag, s int) int { return tag<<6 | s }

// Bcast broadcasts data from the subcube member with relative address
// rootRel to all members, using a binomial spanning tree rooted there:
// k = popcount(mask) communication steps of the full payload. Every
// member returns its own copy (the root returns data itself).
func Bcast(p *hypercube.Proc, mask, tag, rootRel int, data []float64) []float64 {
	p.BeginSpan("bcast")
	defer p.EndSpan()
	p.NoteCollective("bcast", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() {
		// Only the root's data length is authoritative; non-roots may
		// pass nil, predicting 0 — conformance takes the max over procs.
		p.SpanPredict(costmodel.PredictBcast(p.Params(), k, len(data)))
	}
	r := rel(p, mask) ^ rootRel // address relative to the root
	holds := r == 0
	var buf []float64
	if holds {
		buf = data
	}
	// Steps descend so that before step i the holders are exactly the
	// processors whose relative address has no bits at positions <= i;
	// each holder forwards along dimension ds[i] to the processor one
	// bit-i flip away.
	for i := k - 1; i >= 0; i-- {
		low := r & ((1 << (i + 1)) - 1)
		switch {
		case low == 0 && holds:
			p.Send(ds[i], subTag(tag, i), buf)
		case low == 1<<i:
			buf = p.Recv(ds[i], subTag(tag, i))
			holds = true
		}
	}
	if !holds {
		panic("collective: Bcast finished without data (inconsistent rootRel?)")
	}
	if r == 0 {
		// Hand the root a private copy too, so all returns are alias-free.
		cp := p.GetBuf(len(buf))
		copy(cp, buf)
		return cp
	}
	return buf
}

// BcastLarge broadcasts data from rootRel using the bandwidth-optimal
// scatter/all-gather scheme: the payload is scattered into 2^k pieces
// down the binomial tree, then all-gathered by recursive doubling.
// Total transfer volume per link is O(n/2 + n/4 + ...) so the time is
// about 2*k*tau + 2*n*t_c, beating Bcast's k*n*t_c once n*t_c >> tau.
// len(data) must be divisible by 2^k.
func BcastLarge(p *hypercube.Proc, mask, tag, rootRel int, data []float64) []float64 {
	p.BeginSpan("bcast-large")
	defer p.EndSpan()
	p.NoteCollective("bcast-large", mask, tag)
	k := gray.OnesCount(mask)
	if p.Profiling() && k > 0 && len(data)%(1<<k) == 0 {
		p.SpanPredict(costmodel.PredictScatter(p.Params(), k, len(data), 2) +
			costmodel.PredictAllGather(p.Params(), k, len(data)>>uint(k)))
	}
	if k == 0 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	if len(data)%(1<<k) != 0 {
		panic(fmt.Sprintf("collective: BcastLarge length %d not divisible by %d", len(data), 1<<k))
	}
	piece := Scatter(p, mask, tag, rootRel, data)
	out := AllGather(p, mask, tag+1, piece)
	p.Recycle(piece)
	return out
}

// Reduce combines data across the subcube with comb, delivering the
// full combined vector to the member with relative address rootRel,
// which receives it as the return value; all other members return nil.
// It is the mirror image of Bcast: a binomial tree with combining at
// every internal node.
func Reduce(p *hypercube.Proc, mask, tag, rootRel int, data []float64, comb Combiner) []float64 {
	p.BeginSpan("reduce")
	defer p.EndSpan()
	p.NoteCollective("reduce", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictReduce(p.Params(), k, len(data)))
	}
	r := rel(p, mask) ^ rootRel
	acc := p.GetBuf(len(data))
	copy(acc, data)
	for i := 0; i < k; i++ {
		low := r & ((1 << (i + 1)) - 1)
		switch {
		case low == 0:
			src := p.Recv(ds[i], subTag(tag, i))
			comb(acc, src)
			p.Compute(len(acc))
			p.Recycle(src)
		case low == 1<<i:
			p.Send(ds[i], subTag(tag, i), acc)
			p.Recycle(acc)
			acc = nil
			// This processor's part is done; it holds no data.
			i = k
		}
	}
	if r == 0 {
		return acc
	}
	return nil
}

// ReduceScatter combines data across the subcube by recursive halving
// and leaves each member with one 1/2^k slice of the combined vector:
// the member with relative address r gets the slice starting at offset
// r*(len/2^k). It returns the slice and its offset. len(data) must be
// divisible by 2^k. Message sizes halve every step, which is the
// source of the primitives' asymptotic work-optimality.
func ReduceScatter(p *hypercube.Proc, mask, tag int, data []float64, comb Combiner) (piece []float64, offset int) {
	p.BeginSpan("reduce-scatter")
	defer p.EndSpan()
	p.NoteCollective("reduce-scatter", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictReduceScatter(p.Params(), k, len(data)))
	}
	if k == 0 {
		cp := p.GetBuf(len(data))
		copy(cp, data)
		return cp, 0
	}
	if len(data)%(1<<k) != 0 {
		panic(fmt.Sprintf("collective: ReduceScatter length %d not divisible by %d", len(data), 1<<k))
	}
	r := rel(p, mask)
	cur := p.GetBuf(len(data))
	copy(cur, data)
	offset = 0
	for i := k - 1; i >= 0; i-- {
		half := len(cur) / 2
		var keep, send []float64
		if r&(1<<i) == 0 {
			keep, send = cur[:half], cur[half:]
		} else {
			keep, send = cur[half:], cur[:half]
			offset += half
		}
		got := p.Exchange(ds[i], subTag(tag, i), send)
		comb(keep, got)
		p.Compute(half)
		p.Recycle(got)
		cur = keep
	}
	return cur, offset
}

// AllGather concatenates the members' pieces by recursive doubling so
// that every member ends with the full vector ordered by relative
// address: member r's input occupies the r-th slot. All pieces must
// have equal length (checked during the exchanges).
func AllGather(p *hypercube.Proc, mask, tag int, piece []float64) []float64 {
	p.BeginSpan("all-gather")
	defer p.EndSpan()
	p.NoteCollective("all-gather", mask, tag)
	ds := gray.Dims(mask)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictAllGather(p.Params(), len(ds), len(piece)))
	}
	r := rel(p, mask)
	buf := p.GetBuf(len(piece))
	copy(buf, piece)
	for i := 0; i < len(ds); i++ {
		got := p.Exchange(ds[i], subTag(tag, i), buf)
		if len(got) != len(buf) {
			panic("collective: AllGather piece length mismatch")
		}
		merged := p.GetBuf(2 * len(buf))
		if r&(1<<i) == 0 {
			copy(merged, buf)
			copy(merged[len(buf):], got)
		} else {
			copy(merged, got)
			copy(merged[len(got):], buf)
		}
		p.Recycle(got)
		p.Recycle(buf)
		buf = merged
	}
	return buf
}

// AllReduce combines data across the subcube and delivers the full
// result to every member. For short vectors it uses k exchange-and-
// combine steps on the whole payload (recursive doubling); for long
// vectors it switches to reduce-scatter + all-gather, which moves
// about 2n words instead of k*n. The switch point is where the
// modelled costs cross.
func AllReduce(p *hypercube.Proc, mask, tag int, data []float64, comb Combiner) []float64 {
	p.BeginSpan("all-reduce")
	defer p.EndSpan()
	p.NoteCollective("all-reduce", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictAllReduce(p.Params(), k, len(data)))
	}
	if k == 0 {
		cp := p.GetBuf(len(data))
		copy(cp, data)
		return cp
	}
	n := len(data)
	params := p.Params()
	// Recursive doubling: k*(tau + n*t_c). Halving+doubling:
	// 2k*tau + ~2n*t_c. Prefer halving+doubling when it is cheaper and
	// the length divides evenly.
	doubling := float64(k) * (float64(params.CommStartup) + float64(n)*float64(params.CommPerWord))
	halving := 2*float64(k)*float64(params.CommStartup) + 2*float64(n)*float64(params.CommPerWord)
	if n%(1<<k) == 0 && n > 0 && halving < doubling {
		piece, _ := ReduceScatter(p, mask, tag, data, comb)
		out := AllGather(p, mask, tag+1, piece)
		p.Recycle(piece)
		return out
	}
	acc := p.GetBuf(n)
	copy(acc, data)
	for i := 0; i < k; i++ {
		got := p.Exchange(ds[i], subTag(tag, i), acc)
		comb(acc, got)
		p.Compute(n)
		p.Recycle(got)
	}
	return acc
}

// Gather concatenates the members' equal-length pieces at the member
// with relative address rootRel, ordered by relative address; the root
// returns the assembled vector, everyone else nil.
func Gather(p *hypercube.Proc, mask, tag, rootRel int, piece []float64) []float64 {
	p.BeginSpan("gather")
	defer p.EndSpan()
	p.NoteCollective("gather", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictGather(p.Params(), k, len(piece), 2))
	}
	r := rel(p, mask) ^ rootRel
	// Gather toward r == 0 in XOR-relative space; each intermediate
	// node prefixes its own buffer. The XOR relabelling scrambles
	// segment order, so carry (origin, payload) and let the root sort.
	type seg struct {
		origin int
		words  []float64
	}
	segs := []seg{{origin: rel(p, mask), words: append([]float64(nil), piece...)}}
	for i := 0; i < k; i++ {
		low := r & ((1 << (i + 1)) - 1)
		switch {
		case low == 1<<i:
			// Flatten segments with origin headers and ship them.
			total := 0
			for _, s := range segs {
				total += 2 + len(s.words)
			}
			flat := p.GetBuf(total)[:0]
			for _, s := range segs {
				flat = append(flat, float64(s.origin), float64(len(s.words)))
				flat = append(flat, s.words...)
			}
			p.Send(ds[i], subTag(tag, i), flat)
			p.Recycle(flat)
			segs = nil
			i = k
		case low == 0:
			flat := p.Recv(ds[i], subTag(tag, i))
			for j := 0; j < len(flat); {
				origin := int(flat[j])
				n := int(flat[j+1])
				j += 2
				segs = append(segs, seg{origin: origin, words: append([]float64(nil), flat[j:j+n]...)})
				j += n
			}
			p.Recycle(flat)
		}
	}
	if rel(p, mask)^rootRel != 0 {
		return nil
	}
	out := make([]float64, (1<<k)*len(piece))
	for _, s := range segs {
		copy(out[s.origin*len(piece):], s.words)
	}
	return out
}

// Scatter distributes the root's vector so that the member with
// relative address r receives the r-th of 2^k equal slices. Only the
// root's data argument is consulted; len must be divisible by 2^k.
func Scatter(p *hypercube.Proc, mask, tag, rootRel int, data []float64) []float64 {
	p.BeginSpan("scatter")
	defer p.EndSpan()
	p.NoteCollective("scatter", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if p.Profiling() {
		// Non-roots pass nil data and predict 0; the root's prediction
		// carries the conformance entry via the max over processors.
		p.SpanPredict(costmodel.PredictScatter(p.Params(), k, len(data), 2))
	}
	if k == 0 {
		cp := p.GetBuf(len(data))
		copy(cp, data)
		return cp
	}
	myRel := rel(p, mask)
	xr := myRel ^ rootRel
	type seg struct {
		dest  int
		words []float64
	}
	var segs []seg
	if xr == 0 {
		if len(data)%(1<<k) != 0 {
			panic(fmt.Sprintf("collective: Scatter length %d not divisible by %d", len(data), 1<<k))
		}
		sz := len(data) / (1 << k)
		segs = make([]seg, 1<<k)
		for j := 0; j < 1<<k; j++ {
			segs[j] = seg{dest: j, words: data[j*sz : (j+1)*sz]}
		}
	}
	// Walk the binomial tree top-down: at step i (descending), holders
	// forward the segments whose destination lies in the neighbor's
	// half of the XOR-relative space. A holder at step i has all
	// XOR-relative bits <= i clear, so the neighbor's half consists of
	// the destinations whose XOR-relative bit i is set.
	for i := k - 1; i >= 0; i-- {
		low := xr & ((1 << (i + 1)) - 1)
		switch {
		case low == 0 && segs != nil:
			var mine, theirs []seg
			for _, s := range segs {
				if (s.dest^rootRel)>>i&1 != xr>>i&1 {
					theirs = append(theirs, s)
				} else {
					mine = append(mine, s)
				}
			}
			total := 0
			for _, s := range theirs {
				total += 2 + len(s.words)
			}
			flat := p.GetBuf(total)[:0]
			for _, s := range theirs {
				flat = append(flat, float64(s.dest), float64(len(s.words)))
				flat = append(flat, s.words...)
			}
			p.Send(ds[i], subTag(tag, i), flat)
			p.Recycle(flat)
			segs = mine
		case low == 1<<i:
			flat := p.Recv(ds[i], subTag(tag, i))
			for j := 0; j < len(flat); {
				dest := int(flat[j])
				n := int(flat[j+1])
				j += 2
				segs = append(segs, seg{dest: dest, words: append([]float64(nil), flat[j:j+n]...)})
				j += n
			}
			p.Recycle(flat)
		}
	}
	for _, s := range segs {
		if s.dest == myRel {
			cp := p.GetBuf(len(s.words))
			copy(cp, s.words)
			return cp
		}
	}
	panic("collective: Scatter did not deliver a segment")
}

// AllToAll performs all-to-all personalized communication: out[j] is
// this member's payload for the member with relative address j, and
// the returned slice's j-th entry is the payload from member j. All
// payloads must have equal length. The pairwise-exchange algorithm
// moves half of the local volume in each of the k steps.
func AllToAll(p *hypercube.Proc, mask, tag int, out [][]float64) [][]float64 {
	p.BeginSpan("all-to-all")
	defer p.EndSpan()
	p.NoteCollective("all-to-all", mask, tag)
	ds := gray.Dims(mask)
	k := len(ds)
	if len(out) != 1<<k {
		panic(fmt.Sprintf("collective: AllToAll needs %d payloads, got %d", 1<<k, len(out)))
	}
	if p.Profiling() && len(out) > 0 {
		p.SpanPredict(costmodel.PredictAllToAll(p.Params(), k, len(out[0])))
	}
	r := rel(p, mask)
	sz := -1
	cur := make([][]float64, len(out))
	for j, w := range out {
		if sz < 0 {
			sz = len(w)
		} else if len(w) != sz {
			panic("collective: AllToAll payloads must have equal length")
		}
		cur[j] = append([]float64(nil), w...)
	}
	slots := make([]int, 0, len(cur)/2)
	for i := 0; i < k; i++ {
		// Exchange the slots whose index bit i differs from ours.
		flat := p.GetBuf((len(cur) / 2) * sz)[:0]
		slots = slots[:0]
		for j := range cur {
			if j>>i&1 != r>>i&1 {
				flat = append(flat, cur[j]...)
				slots = append(slots, j)
			}
		}
		got := p.Exchange(ds[i], subTag(tag, i), flat)
		if len(got) != len(flat) {
			panic("collective: AllToAll volume mismatch")
		}
		p.Recycle(flat)
		for si, j := range slots {
			copy(cur[j], got[si*sz:(si+1)*sz])
		}
		p.Recycle(got)
	}
	return cur
}

// ScanInclusive computes, for the member with relative address r, the
// combination of the inputs of members 0..r (inclusive), using the
// classic hypercube prefix algorithm: k exchange steps carrying the
// running subcube total alongside the prefix.
func ScanInclusive(p *hypercube.Proc, mask, tag int, data []float64, comb Combiner) []float64 {
	p.BeginSpan("scan")
	defer p.EndSpan()
	p.NoteCollective("scan", mask, tag)
	ds := gray.Dims(mask)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictScan(p.Params(), len(ds), len(data)))
	}
	r := rel(p, mask)
	prefix := p.GetBuf(len(data))
	copy(prefix, data)
	total := p.GetBuf(len(data))
	copy(total, data)
	for i := 0; i < len(ds); i++ {
		got := p.Exchange(ds[i], subTag(tag, i), total)
		if r>>i&1 == 1 {
			comb(prefix, got)
			p.Compute(len(prefix))
		}
		comb(total, got)
		p.Compute(len(total))
		p.Recycle(got)
	}
	p.Recycle(total)
	return prefix
}

// ScanExclusive is ScanInclusive shifted by one member: member r
// receives the combination of members 0..r-1, and member 0 receives
// identity (which the caller supplies, since the combiner's identity
// is not known here).
func ScanExclusive(p *hypercube.Proc, mask, tag int, data, identity []float64, comb Combiner) []float64 {
	p.BeginSpan("scan-exclusive")
	defer p.EndSpan()
	p.NoteCollective("scan-exclusive", mask, tag)
	ds := gray.Dims(mask)
	if p.Profiling() {
		p.SpanPredict(costmodel.PredictScan(p.Params(), len(ds), len(data)))
	}
	r := rel(p, mask)
	prefix := p.GetBuf(len(identity))
	copy(prefix, identity)
	total := p.GetBuf(len(data))
	copy(total, data)
	for i := 0; i < len(ds); i++ {
		got := p.Exchange(ds[i], subTag(tag, i), total)
		if r>>i&1 == 1 {
			comb(prefix, got)
			p.Compute(len(prefix))
		}
		comb(total, got)
		p.Compute(len(total))
		p.Recycle(got)
	}
	p.Recycle(total)
	return prefix
}
