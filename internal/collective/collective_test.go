package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmprim/internal/costmodel"
	"vmprim/internal/gray"
	"vmprim/internal/hypercube"
)

// masksFor returns a variety of dimension masks inside a dim-d cube,
// including non-contiguous ones and the empty mask.
func masksFor(d int) []int {
	masks := []int{0}
	full := (1 << d) - 1
	masks = append(masks, full)
	if d >= 2 {
		masks = append(masks, 0b01, 0b10, full>>1)
	}
	if d >= 3 {
		masks = append(masks, 0b101, 0b110)
	}
	if d >= 4 {
		masks = append(masks, 0b1010, 0b1001, 0b0110)
	}
	return masks
}

func newMachine(t *testing.T, d int) *hypercube.Machine {
	t.Helper()
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBcastAllMasksAllRoots(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		for rootRel := 0; rootRel < 1<<k; rootRel++ {
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				// Seed data so each subcube's root value is unique:
				// derived from the off-mask bits + the root coordinate.
				base := float64(p.ID()&^mask)*1000 + float64(rootRel)
				var data []float64
				if gray.Compact(p.ID(), mask) == rootRel {
					data = []float64{base, base + 1, base + 2}
				}
				got[p.ID()] = Bcast(p, mask, 1, rootRel, data)
			})
			if err != nil {
				t.Fatalf("mask %b root %d: %v", mask, rootRel, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				base := float64(pid&^mask)*1000 + float64(rootRel)
				for j := 0; j < 3; j++ {
					if got[pid][j] != base+float64(j) {
						t.Fatalf("mask %b root %d proc %d: got %v", mask, rootRel, pid, got[pid])
					}
				}
			}
		}
	}
}

func TestBcastLargeMatchesBcast(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range []int{0, 0b11, 0b1111, 0b1010} {
		k := gray.OnesCount(mask)
		n := 8 << k
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(i) * 1.5
		}
		got := make([][]float64, m.P())
		_, err := m.Run(func(p *hypercube.Proc) {
			var data []float64
			if gray.Compact(p.ID(), mask) == 0 {
				data = want
			}
			got[p.ID()] = BcastLarge(p, mask, 1, 0, data)
		})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for pid := 0; pid < m.P(); pid++ {
			for i := range want {
				if got[pid][i] != want[i] {
					t.Fatalf("mask %b proc %d elem %d: got %v want %v", mask, pid, i, got[pid][i], want[i])
				}
			}
		}
	}
}

func TestBcastLargeCheaperForLongVectors(t *testing.T) {
	// With CM2 parameters and a long vector, scatter/all-gather must
	// beat the binomial tree (that is its reason to exist).
	m := newMachine(t, 6)
	n := 64 * 64
	data := make([]float64, n)
	mask := (1 << 6) - 1
	_, err := m.Run(func(p *hypercube.Proc) {
		var d []float64
		if p.ID() == 0 {
			d = data
		}
		Bcast(p, mask, 1, 0, d)
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := m.Elapsed()
	_, err = m.Run(func(p *hypercube.Proc) {
		var d []float64
		if p.ID() == 0 {
			d = data
		}
		BcastLarge(p, mask, 1, 0, d)
	})
	if err != nil {
		t.Fatal(err)
	}
	large := m.Elapsed()
	if large >= tree {
		t.Fatalf("BcastLarge (%v) not cheaper than Bcast (%v) at n=%d", large, tree, n)
	}
}

func TestReduceSumAllMasksAllRoots(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		for _, rootRel := range []int{0, (1 << k) - 1} {
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				data := []float64{1, float64(p.ID())}
				got[p.ID()] = Reduce(p, mask, 1, rootRel, data, Sum)
			})
			if err != nil {
				t.Fatalf("mask %b: %v", mask, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				isRoot := gray.Compact(pid, mask) == rootRel
				if !isRoot {
					if got[pid] != nil {
						t.Fatalf("mask %b proc %d: non-root got data", mask, pid)
					}
					continue
				}
				// Sum of ids over the subcube containing pid.
				count, idSum := 0.0, 0.0
				for q := 0; q < m.P(); q++ {
					if q&^mask == pid&^mask {
						count++
						idSum += float64(q)
					}
				}
				if got[pid][0] != count || got[pid][1] != idSum {
					t.Fatalf("mask %b root proc %d: got %v, want [%v %v]", mask, pid, got[pid], count, idSum)
				}
			}
		}
	}
}

func TestAllReduceMatchesReduce(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		for _, n := range []int{1, 3, 16, 64} {
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(p.ID()*n + i)
				}
				got[p.ID()] = AllReduce(p, mask, 1, data, Sum)
			})
			if err != nil {
				t.Fatalf("mask %b n %d: %v", mask, n, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				for i := 0; i < n; i++ {
					want := 0.0
					for q := 0; q < m.P(); q++ {
						if q&^mask == pid&^mask {
							want += float64(q*n + i)
						}
					}
					if math.Abs(got[pid][i]-want) > 1e-9 {
						t.Fatalf("mask %b n %d proc %d elem %d: got %v want %v", mask, n, pid, i, got[pid][i], want)
					}
				}
			}
		}
	}
}

func TestReduceScatterPiecesReassemble(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		n := 4 << k
		pieces := make([][]float64, m.P())
		offsets := make([]int, m.P())
		_, err := m.Run(func(p *hypercube.Proc) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i) // same on every proc: sum = count * i
			}
			pieces[p.ID()], offsets[p.ID()] = ReduceScatter(p, mask, 1, data, Sum)
		})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		subSize := float64(int(1) << k)
		for pid := 0; pid < m.P(); pid++ {
			r := gray.Compact(pid, mask)
			wantOff := r * (n >> k)
			if offsets[pid] != wantOff {
				t.Fatalf("mask %b proc %d: offset %d, want %d", mask, pid, offsets[pid], wantOff)
			}
			if len(pieces[pid]) != n>>k {
				t.Fatalf("mask %b proc %d: piece len %d, want %d", mask, pid, len(pieces[pid]), n>>k)
			}
			for j, v := range pieces[pid] {
				if v != subSize*float64(wantOff+j) {
					t.Fatalf("mask %b proc %d piece[%d] = %v, want %v", mask, pid, j, v, subSize*float64(wantOff+j))
				}
			}
		}
	}
}

func TestAllGatherOrder(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		got := make([][]float64, m.P())
		_, err := m.Run(func(p *hypercube.Proc) {
			r := gray.Compact(p.ID(), mask)
			piece := []float64{float64(r), float64(r) + 0.5}
			got[p.ID()] = AllGather(p, mask, 1, piece)
		})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for pid := 0; pid < m.P(); pid++ {
			if len(got[pid]) != 2<<k {
				t.Fatalf("mask %b proc %d: len %d", mask, pid, len(got[pid]))
			}
			for r := 0; r < 1<<k; r++ {
				if got[pid][2*r] != float64(r) || got[pid][2*r+1] != float64(r)+0.5 {
					t.Fatalf("mask %b proc %d slot %d: %v", mask, pid, r, got[pid][2*r:2*r+2])
				}
			}
		}
	}
}

func TestGatherAllMasksAllRoots(t *testing.T) {
	const d = 3
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		for rootRel := 0; rootRel < 1<<k; rootRel++ {
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				r := gray.Compact(p.ID(), mask)
				piece := []float64{float64(r) * 10, float64(r)*10 + 1}
				got[p.ID()] = Gather(p, mask, 1, rootRel, piece)
			})
			if err != nil {
				t.Fatalf("mask %b root %d: %v", mask, rootRel, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				r := gray.Compact(pid, mask)
				if r != rootRel {
					if got[pid] != nil {
						t.Fatalf("mask %b root %d: non-root %d got data", mask, rootRel, pid)
					}
					continue
				}
				if len(got[pid]) != 2<<k {
					t.Fatalf("mask %b root %d: len %d", mask, rootRel, len(got[pid]))
				}
				for q := 0; q < 1<<k; q++ {
					if got[pid][2*q] != float64(q)*10 || got[pid][2*q+1] != float64(q)*10+1 {
						t.Fatalf("mask %b root %d slot %d: %v", mask, rootRel, q, got[pid][2*q:2*q+2])
					}
				}
			}
		}
	}
}

func TestScatterAllMasksAllRoots(t *testing.T) {
	const d = 3
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		n := 2 << k
		for rootRel := 0; rootRel < 1<<k; rootRel++ {
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				var data []float64
				if gray.Compact(p.ID(), mask) == rootRel {
					data = make([]float64, n)
					for i := range data {
						data[i] = float64(i) + float64(p.ID()&^mask)*100
					}
				}
				got[p.ID()] = Scatter(p, mask, 1, rootRel, data)
			})
			if err != nil {
				t.Fatalf("mask %b root %d: %v", mask, rootRel, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				r := gray.Compact(pid, mask)
				base := float64(pid&^mask) * 100
				if len(got[pid]) != 2 {
					t.Fatalf("mask %b root %d proc %d: len %d", mask, rootRel, pid, len(got[pid]))
				}
				for j := 0; j < 2; j++ {
					want := base + float64(r*2+j)
					if got[pid][j] != want {
						t.Fatalf("mask %b root %d proc %d: got %v, want %v", mask, rootRel, pid, got[pid][j], want)
					}
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	mask := 0b1011
	k := gray.OnesCount(mask)
	n := 3 << k
	rng := rand.New(rand.NewSource(7))
	orig := make([]float64, n)
	for i := range orig {
		orig[i] = rng.Float64()
	}
	var back []float64
	_, err := m.Run(func(p *hypercube.Proc) {
		var data []float64
		if gray.Compact(p.ID(), mask) == 2 {
			data = orig
		}
		piece := Scatter(p, mask, 1, 2, data)
		out := Gather(p, mask, 2, 2, piece)
		if gray.Compact(p.ID(), mask) == 2 && p.ID()&^mask == 0 {
			back = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, back[i], orig[i])
		}
	}
}

func TestAllToAllDelivery(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		got := make([][][]float64, m.P())
		_, err := m.Run(func(p *hypercube.Proc) {
			r := gray.Compact(p.ID(), mask)
			out := make([][]float64, 1<<k)
			for j := range out {
				// Payload encodes (origin, destination).
				out[j] = []float64{float64(r), float64(j)}
			}
			got[p.ID()] = AllToAll(p, mask, 1, out)
		})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for pid := 0; pid < m.P(); pid++ {
			r := gray.Compact(pid, mask)
			for j := 0; j < 1<<k; j++ {
				if got[pid][j][0] != float64(j) || got[pid][j][1] != float64(r) {
					t.Fatalf("mask %b proc %d slot %d: %v, want [%d %d]", mask, pid, j, got[pid][j], j, r)
				}
			}
		}
	}
}

func TestScanInclusive(t *testing.T) {
	const d = 4
	m := newMachine(t, d)
	for _, mask := range masksFor(d) {
		got := make([][]float64, m.P())
		_, err := m.Run(func(p *hypercube.Proc) {
			r := gray.Compact(p.ID(), mask)
			got[p.ID()] = ScanInclusive(p, mask, 1, []float64{float64(r + 1)}, Sum)
		})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for pid := 0; pid < m.P(); pid++ {
			r := gray.Compact(pid, mask)
			want := float64((r + 1) * (r + 2) / 2) // 1+2+...+(r+1)
			if got[pid][0] != want {
				t.Fatalf("mask %b proc %d (rel %d): got %v, want %v", mask, pid, r, got[pid][0], want)
			}
		}
	}
}

func TestScanExclusive(t *testing.T) {
	const d = 3
	m := newMachine(t, d)
	mask := (1 << d) - 1
	got := make([][]float64, m.P())
	_, err := m.Run(func(p *hypercube.Proc) {
		r := gray.Compact(p.ID(), mask)
		got[p.ID()] = ScanExclusive(p, mask, 1, []float64{float64(r + 1)}, []float64{0}, Sum)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < m.P(); pid++ {
		r := gray.Compact(pid, mask)
		want := float64(r * (r + 1) / 2) // 1+2+...+r
		if got[pid][0] != want {
			t.Fatalf("proc %d (rel %d): got %v, want %v", pid, r, got[pid][0], want)
		}
	}
}

func TestMaxLocMinLoc(t *testing.T) {
	const d = 3
	m := newMachine(t, d)
	vals := []float64{3, 9, 9, 1, 7, 9, 0, 5}
	gotMax := make([][]float64, m.P())
	gotMin := make([][]float64, m.P())
	mask := (1 << d) - 1
	_, err := m.Run(func(p *hypercube.Proc) {
		pair := []float64{vals[p.ID()], float64(p.ID())}
		gotMax[p.ID()] = AllReduce(p, mask, 1, pair, MaxLoc)
		gotMin[p.ID()] = AllReduce(p, mask, 2, pair, MinLoc)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < m.P(); pid++ {
		// Max value 9 first occurs at index 1; min value 0 at index 6.
		if gotMax[pid][0] != 9 || gotMax[pid][1] != 1 {
			t.Fatalf("proc %d MaxLoc = %v, want [9 1]", pid, gotMax[pid])
		}
		if gotMin[pid][0] != 0 || gotMin[pid][1] != 6 {
			t.Fatalf("proc %d MinLoc = %v, want [0 6]", pid, gotMin[pid])
		}
	}
}

func TestCombiners(t *testing.T) {
	dst := []float64{1, 5, -2}
	Sum(dst, []float64{2, -1, 4})
	if dst[0] != 3 || dst[1] != 4 || dst[2] != 2 {
		t.Fatalf("Sum: %v", dst)
	}
	dst = []float64{2, 3, 4}
	Prod(dst, []float64{5, 0, -1})
	if dst[0] != 10 || dst[1] != 0 || dst[2] != -4 {
		t.Fatalf("Prod: %v", dst)
	}
	dst = []float64{1, 5}
	Max(dst, []float64{3, 2})
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("Max: %v", dst)
	}
	dst = []float64{1, 5}
	Min(dst, []float64{3, 2})
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("Min: %v", dst)
	}
}

func TestMaxLocTieBreaksToSmallerIndex(t *testing.T) {
	dst := []float64{7, 4}
	MaxLoc(dst, []float64{7, 2})
	if dst[1] != 2 {
		t.Fatalf("MaxLoc tie: %v, want index 2", dst)
	}
	dst = []float64{7, 2}
	MaxLoc(dst, []float64{7, 4})
	if dst[1] != 2 {
		t.Fatalf("MaxLoc tie: %v, want index 2", dst)
	}
	dst = []float64{3, 9}
	MinLoc(dst, []float64{3, 1})
	if dst[1] != 1 {
		t.Fatalf("MinLoc tie: %v, want index 1", dst)
	}
}

func TestAllReduceAgainstSerialQuick(t *testing.T) {
	// Property: for random inputs, AllReduce(Sum) equals the serial
	// sum within tolerance, on every processor, for a random mask.
	const d = 3
	m := newMachine(t, d)
	f := func(seed int64, maskBits uint8) bool {
		mask := int(maskBits) & ((1 << d) - 1)
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float64, m.P())
		for i := range inputs {
			inputs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		got := make([][]float64, m.P())
		if _, err := m.Run(func(p *hypercube.Proc) {
			got[p.ID()] = AllReduce(p, mask, 1, inputs[p.ID()], Sum)
		}); err != nil {
			return false
		}
		for pid := 0; pid < m.P(); pid++ {
			for j := 0; j < 2; j++ {
				want := 0.0
				for q := 0; q < m.P(); q++ {
					if q&^mask == pid&^mask {
						want += inputs[q][j]
					}
				}
				if math.Abs(got[pid][j]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMaskIsLocal(t *testing.T) {
	m := newMachine(t, 2)
	_, err := m.Run(func(p *hypercube.Proc) {
		data := []float64{float64(p.ID())}
		if got := Bcast(p, 0, 1, 0, data); got[0] != data[0] {
			panic("Bcast mask 0")
		}
		if got := AllReduce(p, 0, 2, data, Sum); got[0] != data[0] {
			panic("AllReduce mask 0")
		}
		if got := Reduce(p, 0, 3, 0, data, Sum); got[0] != data[0] {
			panic("Reduce mask 0")
		}
		piece, off := ReduceScatter(p, 0, 4, data, Sum)
		if off != 0 || piece[0] != data[0] {
			panic("ReduceScatter mask 0")
		}
		if got := AllGather(p, 0, 5, data); got[0] != data[0] {
			panic("AllGather mask 0")
		}
		if got := ScanInclusive(p, 0, 6, data, Sum); got[0] != data[0] {
			panic("Scan mask 0")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterRejectsBadLength(t *testing.T) {
	m := newMachine(t, 2)
	m.SetRecvTimeout(2e9)
	_, err := m.Run(func(p *hypercube.Proc) {
		ReduceScatter(p, 0b11, 1, []float64{1, 2, 3}, Sum) // 3 % 4 != 0
	})
	if err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestBcastResultNotAliased(t *testing.T) {
	m := newMachine(t, 2)
	mask := 0b11
	orig := []float64{1, 2}
	results := make([][]float64, m.P())
	_, err := m.Run(func(p *hypercube.Proc) {
		var data []float64
		if p.ID() == 0 {
			data = orig
		}
		results[p.ID()] = Bcast(p, mask, 1, 0, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	results[0][0] = -99
	if orig[0] == -99 {
		t.Fatal("root result aliases caller data")
	}
	if results[1][0] == -99 || results[2][0] == -99 {
		t.Fatal("results alias each other")
	}
}
