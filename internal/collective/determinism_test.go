package collective

import (
	"fmt"
	"runtime"
	"testing"

	"vmprim/internal/gray"
	"vmprim/internal/hypercube"
)

// Host-parallel determinism for the collectives: the protocols are
// built from paired exchanges and dimension loops whose receive order
// is fixed by program order, so their simulated clocks and link loads
// must not depend on how the host schedules the worker goroutines.

// collectiveWorkload runs a representative mix (reduce, bcast,
// all-to-all personalized) on a fresh machine and returns the clocks
// and link loads as comparable strings.
func collectiveWorkload(t *testing.T, d int) (clocks, links string) {
	t.Helper()
	m := newMachine(t, d)
	defer m.Close()
	mask := (1 << d) - 1
	k := gray.OnesCount(mask)
	_, err := m.Run(func(p *hypercube.Proc) {
		data := []float64{float64(p.ID()), float64(p.ID() * 2)}
		Reduce(p, mask, 1, 0, append([]float64(nil), data...), Sum)
		var bdata []float64
		if gray.Compact(p.ID(), mask) == 0 {
			bdata = data
		}
		Bcast(p, mask, 2, 0, bdata)
		out := make([][]float64, 1<<k)
		for i := range out {
			out[i] = []float64{float64(p.ID()*100 + i)}
		}
		AllToAll(p, mask, 3, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%v", m.Clocks()), fmt.Sprintf("%v", m.Congestion(0))
}

func TestCollectiveGOMAXPROCSDeterminism(t *testing.T) {
	const d = 4
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	settings := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		settings = append(settings, n)
	}
	var baseClocks, baseLinks string
	baseGMP := 0
	for _, gmp := range settings {
		runtime.GOMAXPROCS(gmp)
		clocks, links := collectiveWorkload(t, d)
		if baseGMP == 0 {
			baseClocks, baseLinks, baseGMP = clocks, links, gmp
			continue
		}
		if clocks != baseClocks {
			t.Errorf("gomaxprocs %d vs %d: clocks differ:\n%s\n%s", gmp, baseGMP, clocks, baseClocks)
		}
		if links != baseLinks {
			t.Errorf("gomaxprocs %d vs %d: link loads differ:\n%s\n%s", gmp, baseGMP, links, baseLinks)
		}
	}
}
