package collective

import (
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/gray"
	"vmprim/internal/hypercube"
)

func TestBcastAllPortDelivers(t *testing.T) {
	const d = 4
	m, err := hypercube.New(d, costmodel.CM2().WithAllPorts(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		if k == 0 {
			continue
		}
		for rootRel := 0; rootRel < 1<<k; rootRel++ {
			n := 3 * k // divisible by k
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				base := float64(p.ID()&^mask) * 1000
				var data []float64
				if gray.Compact(p.ID(), mask) == rootRel {
					data = make([]float64, n)
					for i := range data {
						data[i] = base + float64(i)
					}
				}
				got[p.ID()] = BcastAllPort(p, mask, 1, rootRel, data)
			})
			if err != nil {
				t.Fatalf("mask %b root %d: %v", mask, rootRel, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				base := float64(pid&^mask) * 1000
				if len(got[pid]) != n {
					t.Fatalf("mask %b root %d proc %d: len %d, want %d", mask, rootRel, pid, len(got[pid]), n)
				}
				for i := range got[pid] {
					if got[pid][i] != base+float64(i) {
						t.Fatalf("mask %b root %d proc %d elem %d: %v, want %v",
							mask, rootRel, pid, i, got[pid][i], base+float64(i))
					}
				}
			}
		}
	}
}

func TestBcastAllPortEmptyPayload(t *testing.T) {
	m, err := hypercube.New(3, costmodel.CM2().WithAllPorts(true))
	if err != nil {
		t.Fatal(err)
	}
	mask := 0b111
	_, err = m.Run(func(p *hypercube.Proc) {
		var data []float64 // nil at root too
		out := BcastAllPort(p, mask, 1, 0, data)
		if len(out) != 0 {
			panic("phantom data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllPortMaskZero(t *testing.T) {
	m, _ := hypercube.New(2, costmodel.CM2().WithAllPorts(true))
	_, err := m.Run(func(p *hypercube.Proc) {
		out := BcastAllPort(p, 0, 1, 0, []float64{1, 2, 3})
		if len(out) != 3 || out[0] != 1 {
			panic("mask-0 broadcast broken")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllPortRejectsBadLength(t *testing.T) {
	m, _ := hypercube.New(2, costmodel.CM2().WithAllPorts(true))
	m.SetRecvTimeout(2e9)
	_, err := m.Run(func(p *hypercube.Proc) {
		var data []float64
		if p.ID() == 0 {
			data = []float64{1, 2, 3} // 3 % 2 != 0
		}
		BcastAllPort(p, 0b11, 1, 0, data)
	})
	if err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestBcastAllPortBandwidthWin(t *testing.T) {
	// On the all-port machine with a long payload, the rotated-tree
	// broadcast must beat the one-port binomial tree by close to a
	// factor d in the bandwidth term.
	const d = 6
	n := d * 4096
	data := make([]float64, n)
	mask := (1 << d) - 1

	allPort, _ := hypercube.New(d, costmodel.CM2().WithAllPorts(true))
	_, err := allPort.Run(func(p *hypercube.Proc) {
		var src []float64
		if p.ID() == 0 {
			src = data
		}
		BcastAllPort(p, mask, 1, 0, src)
	})
	if err != nil {
		t.Fatal(err)
	}
	tAllPort := allPort.Elapsed()

	_, err = allPort.Run(func(p *hypercube.Proc) {
		var src []float64
		if p.ID() == 0 {
			src = data
		}
		Bcast(p, mask, 1, 0, src)
	})
	if err != nil {
		t.Fatal(err)
	}
	tBinomial := allPort.Elapsed()

	speedup := float64(tBinomial) / float64(tAllPort)
	if speedup < float64(d)/2 {
		t.Fatalf("all-port speedup %.2f, want >= %.1f (d=%d)", speedup, float64(d)/2, d)
	}
}

func TestBcastAllPortResultIndependentOfPortModel(t *testing.T) {
	// The schedule is valid (slower) on one-port machines too; the
	// delivered data must not change.
	for _, allPorts := range []bool{false, true} {
		m, _ := hypercube.New(3, costmodel.CM2().WithAllPorts(allPorts))
		want := []float64{1, 2, 3, 4, 5, 6}
		got := make([][]float64, m.P())
		_, err := m.Run(func(p *hypercube.Proc) {
			var src []float64
			if p.ID() == 0 {
				src = want
			}
			got[p.ID()] = BcastAllPort(p, 0b111, 1, 0, src)
		})
		if err != nil {
			t.Fatal(err)
		}
		for pid := range got {
			for i := range want {
				if got[pid][i] != want[i] {
					t.Fatalf("allPorts=%v proc %d: %v", allPorts, pid, got[pid])
				}
			}
		}
	}
}

func TestReduceAllPortMatchesReduce(t *testing.T) {
	const d = 4
	m, err := hypercube.New(d, costmodel.CM2().WithAllPorts(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, mask := range masksFor(d) {
		k := gray.OnesCount(mask)
		if k == 0 {
			continue
		}
		n := 2 * k
		for rootRel := 0; rootRel < 1<<k; rootRel++ {
			got := make([][]float64, m.P())
			_, err := m.Run(func(p *hypercube.Proc) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(p.ID()*n + i)
				}
				got[p.ID()] = ReduceAllPort(p, mask, 1, rootRel, data, Sum)
			})
			if err != nil {
				t.Fatalf("mask %b root %d: %v", mask, rootRel, err)
			}
			for pid := 0; pid < m.P(); pid++ {
				isRoot := gray.Compact(pid, mask) == rootRel
				if !isRoot {
					if got[pid] != nil {
						t.Fatalf("mask %b root %d: non-root %d has data", mask, rootRel, pid)
					}
					continue
				}
				for i := 0; i < n; i++ {
					want := 0.0
					for q := 0; q < m.P(); q++ {
						if q&^mask == pid&^mask {
							want += float64(q*n + i)
						}
					}
					if got[pid][i] != want {
						t.Fatalf("mask %b root proc %d elem %d: %v, want %v", mask, pid, i, got[pid][i], want)
					}
				}
			}
		}
	}
}

func TestReduceAllPortBandwidthWin(t *testing.T) {
	const d = 6
	n := d * 4096
	mask := (1 << d) - 1
	m, _ := hypercube.New(d, costmodel.CM2().WithAllPorts(true))
	mkData := func(p *hypercube.Proc) []float64 {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(p.ID() + i)
		}
		return data
	}
	if _, err := m.Run(func(p *hypercube.Proc) {
		ReduceAllPort(p, mask, 1, 0, mkData(p), Sum)
	}); err != nil {
		t.Fatal(err)
	}
	tAllPort := m.Elapsed()
	if _, err := m.Run(func(p *hypercube.Proc) {
		Reduce(p, mask, 1, 0, mkData(p), Sum)
	}); err != nil {
		t.Fatal(err)
	}
	tTree := m.Elapsed()
	if speedup := float64(tTree) / float64(tAllPort); speedup < float64(d)/2 {
		t.Fatalf("all-port reduce speedup %.2f, want >= %.1f", speedup, float64(d)/2)
	}
}

func TestReduceAllPortRejectsBadLength(t *testing.T) {
	m, _ := hypercube.New(2, costmodel.CM2().WithAllPorts(true))
	m.SetRecvTimeout(2e9)
	_, err := m.Run(func(p *hypercube.Proc) {
		ReduceAllPort(p, 0b11, 1, 0, []float64{1, 2, 3}, Sum)
	})
	if err == nil {
		t.Fatal("bad length accepted")
	}
}
