package metrics

import (
	"testing"
)

// buildSnap makes a registry with one of each kind and snapshots it.
func buildSnap(c int64, g float64, obs []float64) *Snapshot {
	r := NewRegistry()
	cnt := r.Counter("runs_total", "runs")
	gau := r.Gauge("last_elapsed_us", "elapsed")
	h := r.Histogram("latency_us", "latency", []float64{1, 10, 100})
	cnt.Add(c)
	gau.Set(g)
	for _, v := range obs {
		h.Observe(v)
	}
	return r.Snapshot()
}

func TestMerge(t *testing.T) {
	a := buildSnap(3, 1.5, []float64{0.5, 5, 50})
	b := buildSnap(4, 2.5, []float64{5, 500})
	m := Merge(a, b)

	if v, ok := m.Value("runs_total"); !ok || v != 7 {
		t.Fatalf("merged counter = %v, %v; want 7", v, ok)
	}
	if v, ok := m.Value("last_elapsed_us"); !ok || v != 2.5 {
		t.Fatalf("merged gauge = %v, %v; want last-wins 2.5", v, ok)
	}
	var h *MetricValue
	for i := range m.Metrics {
		if m.Metrics[i].Name == "latency_us" {
			h = &m.Metrics[i]
		}
	}
	if h == nil || h.Count != 5 {
		t.Fatalf("merged histogram count = %+v, want 5 observations", h)
	}
	wantCum := []int64{1, 3, 4, 5} // <=1: {0.5}; <=10: +{5,5}; <=100: +{50}; +Inf: +{500}
	for i, b := range h.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("merged bucket %d = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if want := 0.5 + 5 + 50 + 5 + 500; h.Sum != want {
		t.Fatalf("merged sum = %g, want %g", h.Sum, want)
	}

	// Inputs must be untouched (no aliasing of bucket slices).
	if a.Metrics[2].Buckets[0].Count != 1 || b.Metrics[2].Buckets[0].Count != 0 {
		t.Fatal("Merge mutated an input snapshot")
	}
	// Merging a nil snapshot is a no-op; merging nothing is empty.
	if got := Merge(nil, a); len(got.Metrics) != len(a.Metrics) {
		t.Fatal("Merge(nil, a) lost metrics")
	}
	if got := Merge(); len(got.Metrics) != 0 {
		t.Fatal("Merge() not empty")
	}
}

func TestMergeTypeMismatchPanics(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("x", "")
	rb.Gauge("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge merge of the same name")
		}
	}()
	Merge(ra.Snapshot(), rb.Snapshot())
}

func TestDelta(t *testing.T) {
	before := buildSnap(3, 1.5, []float64{0.5, 5})
	after := buildSnap(10, 9.5, []float64{0.5, 5, 50, 500})
	d := Delta(after, before)

	if v, _ := d.Value("runs_total"); v != 7 {
		t.Fatalf("delta counter = %v, want 7", v)
	}
	if v, _ := d.Value("last_elapsed_us"); v != 9.5 {
		t.Fatalf("delta gauge = %v, want after's value 9.5", v)
	}
	var h *MetricValue
	for i := range d.Metrics {
		if d.Metrics[i].Name == "latency_us" {
			h = &d.Metrics[i]
		}
	}
	if h.Count != 2 {
		t.Fatalf("delta histogram count = %d, want 2", h.Count)
	}
	wantCum := []int64{0, 0, 1, 2} // the two new observations: 50, 500
	for i, b := range h.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("delta bucket %d = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if want := 550.0; h.Sum != want {
		t.Fatalf("delta sum = %g, want %g", h.Sum, want)
	}
	// after must be untouched.
	if after.Metrics[0].Value != 10 {
		t.Fatal("Delta mutated the after snapshot")
	}
	// A fresh machine has no before: Delta(x, nil) == x.
	d0 := Delta(after, nil)
	if v, _ := d0.Value("runs_total"); v != 10 {
		t.Fatalf("Delta(after, nil) counter = %v, want 10", v)
	}
	// Reset between snapshots clamps to zero, never negative.
	dneg := Delta(before, after)
	if v, _ := dneg.Value("runs_total"); v != 0 {
		t.Fatalf("reset delta counter = %v, want clamp to 0", v)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{10, 20, 40})
	// 10 observations uniform in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := r.Snapshot()

	// Median: rank 10 lands exactly at the top of bucket (0,10].
	if q, ok := s.Quantile("lat", 0.5); !ok || q != 10 {
		t.Fatalf("p50 = %v, %v; want 10", q, ok)
	}
	// p75: rank 15, halfway through (10,20] -> 15.
	if q, ok := s.Quantile("lat", 0.75); !ok || q != 15 {
		t.Fatalf("p75 = %v, %v; want 15", q, ok)
	}
	// p100 clamps to the owning bucket's upper bound.
	if q, ok := s.Quantile("lat", 1); !ok || q != 20 {
		t.Fatalf("p100 = %v, %v; want 20", q, ok)
	}

	// Observations beyond the last finite bound clamp to it.
	h.Observe(1e9)
	s = r.Snapshot()
	if q, ok := s.Quantile("lat", 0.999); !ok || q != 40 {
		t.Fatalf("p99.9 with +Inf mass = %v, %v; want clamp to 40", q, ok)
	}

	// Missing / wrong-kind / empty all answer false.
	if _, ok := s.Quantile("nope", 0.5); ok {
		t.Fatal("quantile of a missing name answered true")
	}
	r2 := NewRegistry()
	r2.Counter("c", "")
	r2.Histogram("empty", "", []float64{1})
	s2 := r2.Snapshot()
	if _, ok := s2.Quantile("c", 0.5); ok {
		t.Fatal("quantile of a counter answered true")
	}
	if _, ok := s2.Quantile("empty", 0.5); ok {
		t.Fatal("quantile of an empty histogram answered true")
	}
}
