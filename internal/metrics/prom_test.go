package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The exposition format is line-oriented: a HELP text containing a
// line feed or backslash must come out escaped, on one line.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm_weird_total", "first line\nsecond line with a \\ backslash").Add(1)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `# HELP vm_weird_total first line\nsecond line with a \\ backslash`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "vm_weird_total") {
			t.Fatalf("stray line %q: unescaped newline split the HELP text", line)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	got := escapeLabel("a\"b\\c\nd")
	if want := `a\"b\\c\nd`; got != want {
		t.Fatalf("escapeLabel = %q, want %q", got, want)
	}
}

// Metric names cannot be escaped, only rejected: registration panics
// on anything outside [a-zA-Z_:][a-zA-Z0-9_:]*.
func TestInvalidMetricNamesRejected(t *testing.T) {
	for _, name := range []string{"", "9lives", "has-dash", "has space", "nl\n", "ütf"} {
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true", name)
		}
		mustPanic(t, "register "+strconv.Quote(name), func() { NewRegistry().Counter(name, "") })
	}
	for _, name := range []string{"x", "_x", ":x", "vm_msgs_total", "a1:b_2"} {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false", name)
		}
	}
}

// Two snapshots of identical registry state render byte-identically,
// and metrics appear in registration order, not map order.
func TestPrometheusDeterministicOrdering(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("vm_z_total", "registered first").Add(3)
		r.Gauge("vm_a_gauge", "registered second").Set(1.5)
		r.Histogram("vm_m_hist", "registered third", []float64{1}).Observe(2)
		return r
	}
	var first bytes.Buffer
	if err := build().Snapshot().WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := build().Snapshot().WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	out := first.String()
	if z, a := strings.Index(out, "vm_z_total"), strings.Index(out, "vm_a_gauge"); z > a {
		t.Fatalf("registration order not preserved:\n%s", out)
	}
}

// parseExposition is a minimal text-format parser for the round-trip
// test: sample lines become name -> value, with histogram buckets
// keyed as name_bucket{le="..."}.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value %q: %v", key, val, err)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

// Everything the snapshot holds survives a trip through the text
// format: write, re-parse, compare against the snapshot's own values.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm_msgs_total", "messages").Add(1234)
	r.Gauge("vm_ratio", "a fraction").Set(0.625)
	h := r.Histogram("vm_words", "payload words", []float64{1, 8, 64})
	for _, v := range []float64{0.5, 4, 4, 100} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	want := map[string]float64{
		"vm_msgs_total":              1234,
		"vm_ratio":                   0.625,
		`vm_words_bucket{le="1"}`:    1,
		`vm_words_bucket{le="8"}`:    3,
		`vm_words_bucket{le="64"}`:   3,
		`vm_words_bucket{le="+Inf"}`: 4,
		"vm_words_sum":               108.5,
		"vm_words_count":             4,
	}
	if len(samples) != len(want) {
		t.Fatalf("parsed %d samples, want %d: %v", len(samples), len(want), samples)
	}
	for key, wv := range want {
		if gv, ok := samples[key]; !ok || gv != wv {
			t.Errorf("sample %s = %v (present %v), want %v", key, gv, ok, wv)
		}
	}
}
