package metrics

import (
	"fmt"
	"math"
)

// Snapshot algebra for the serving layer. A pooled machine's registry
// is cumulative over every run it has ever executed, so a single run's
// metrics are Delta(after, before) around that run; the server's
// /metrics endpoint is Merge over the per-run deltas plus its own
// serving registry. Both operate on immutable snapshots, never on live
// registries, so they need no locking and cannot perturb the source.

// Merge folds snapshots into one: counters and histogram buckets sum,
// gauges take the last snapshot's value (most recent wins), and
// metrics keep first-seen order. Merging the same name with different
// types or histogram bucket layouts panics — that is a registry-layout
// bug, not a data condition.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	index := make(map[string]int)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for i := range s.Metrics {
			m := &s.Metrics[i]
			j, seen := index[m.Name]
			if !seen {
				index[m.Name] = len(out.Metrics)
				out.Metrics = append(out.Metrics, cloneMetric(m))
				continue
			}
			acc := &out.Metrics[j]
			if acc.Type != m.Type {
				panic(fmt.Sprintf("metrics: Merge %s: type %s vs %s", m.Name, acc.Type, m.Type))
			}
			switch m.Type {
			case "counter":
				acc.Value += m.Value
			case "gauge":
				acc.Value = m.Value
			case "histogram":
				if len(acc.Buckets) != len(m.Buckets) {
					panic(fmt.Sprintf("metrics: Merge %s: %d vs %d buckets", m.Name, len(acc.Buckets), len(m.Buckets)))
				}
				for b := range m.Buckets {
					if acc.Buckets[b].Le != m.Buckets[b].Le {
						panic(fmt.Sprintf("metrics: Merge %s: bucket %d bound %g vs %g",
							m.Name, b, acc.Buckets[b].Le, m.Buckets[b].Le))
					}
					acc.Buckets[b].Count += m.Buckets[b].Count
				}
				acc.Sum += m.Sum
				acc.Count += m.Count
			}
			if acc.Help == "" {
				acc.Help = m.Help
			}
		}
	}
	return out
}

// Delta returns after minus before, metric by metric: counter values
// and histogram buckets subtract (clamped at zero, so a reset between
// snapshots degrades to "since reset" rather than a negative count),
// gauges carry after's value unchanged. Metrics present only in after
// pass through whole; metrics present only in before are dropped. Both
// snapshots are left untouched.
func Delta(after, before *Snapshot) *Snapshot {
	out := &Snapshot{}
	if after == nil {
		return out
	}
	prev := make(map[string]*MetricValue)
	if before != nil {
		for i := range before.Metrics {
			prev[before.Metrics[i].Name] = &before.Metrics[i]
		}
	}
	for i := range after.Metrics {
		m := cloneMetric(&after.Metrics[i])
		if b, ok := prev[m.Name]; ok && b.Type == m.Type {
			switch m.Type {
			case "counter":
				m.Value = math.Max(0, m.Value-b.Value)
			case "histogram":
				if len(b.Buckets) == len(m.Buckets) {
					for j := range m.Buckets {
						m.Buckets[j].Count = max64(0, m.Buckets[j].Count-b.Buckets[j].Count)
					}
					m.Sum -= b.Sum
					m.Count = max64(0, m.Count-b.Count)
				}
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the named
// histogram by linear interpolation inside the owning cumulative
// bucket, the same estimate Prometheus's histogram_quantile computes.
// Observations in the +Inf bucket clamp to the largest finite bound.
// The second result is false if the name is missing, is not a
// histogram, or has no observations.
func (s *Snapshot) Quantile(name string, q float64) (float64, bool) {
	var m *MetricValue
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			m = &s.Metrics[i]
			break
		}
	}
	if m == nil || m.Type != "histogram" || m.Count == 0 || len(m.Buckets) == 0 {
		return 0, false
	}
	q = math.Min(1, math.Max(0, q))
	rank := q * float64(m.Count)
	for i, b := range m.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.Le, 1) {
			// No finite upper edge to interpolate toward; clamp to the
			// largest finite bound (or 0 for a single +Inf bucket).
			if i == 0 {
				return 0, true
			}
			return m.Buckets[i-1].Le, true
		}
		lower, prevCum := 0.0, int64(0)
		if i > 0 {
			lower = m.Buckets[i-1].Le
			prevCum = m.Buckets[i-1].Count
		}
		inBucket := b.Count - prevCum
		if inBucket == 0 {
			return b.Le, true
		}
		return lower + (b.Le-lower)*(rank-float64(prevCum))/float64(inBucket), true
	}
	// Unreachable for well-formed snapshots (last bucket holds Count),
	// but degrade gracefully.
	return m.Buckets[len(m.Buckets)-1].Le, true
}

// cloneMetric deep-copies one metric so snapshot algebra never aliases
// its inputs' bucket slices.
func cloneMetric(m *MetricValue) MetricValue {
	c := *m
	if m.Buckets != nil {
		c.Buckets = append([]BucketCount(nil), m.Buckets...)
	}
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
