package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total", "messages")
	g := r.Gauge("elapsed_us", "last run")
	h := r.Histogram("words", "payload sizes", []float64{1, 4, 16})

	c.Add(3)
	c.Add(2)
	g.Set(12.5)
	g.Set(7.25)
	for _, v := range []float64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	h.AddBuckets([]int64{1, 0, 2, 1}, 50)

	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 7.25 {
		t.Fatalf("gauge = %v, want 7.25", g.Value())
	}

	s := r.Snapshot()
	if len(s.Metrics) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(s.Metrics))
	}
	// Registration order is preserved.
	if s.Metrics[0].Name != "msgs_total" || s.Metrics[1].Name != "elapsed_us" || s.Metrics[2].Name != "words" {
		t.Fatalf("order wrong: %+v", s.Metrics)
	}
	if v, ok := s.Value("msgs_total"); !ok || v != 5 {
		t.Fatalf("Value(msgs_total) = %v,%v", v, ok)
	}
	if v, ok := s.Value("words"); !ok || v != 9 {
		t.Fatalf("Value(words) = %v,%v, want 9 observations", v, ok)
	}
	if _, ok := s.Value("missing"); ok {
		t.Fatal("Value(missing) found")
	}

	hist := s.Metrics[2]
	// Observed non-cumulative bins: [2,1,1,1]; AddBuckets adds
	// [1,0,2,1] for [3,1,3,2]; cumulative: 3, 4, 7, 9.
	wantCum := []int64{3, 4, 7, 9}
	if len(hist.Buckets) != 4 {
		t.Fatalf("buckets = %+v", hist.Buckets)
	}
	for i, b := range hist.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(hist.Buckets[3].Le, 1) {
		t.Fatalf("last bucket le = %v, want +Inf", hist.Buckets[3].Le)
	}
	if hist.Sum != 158 || hist.Count != 9 {
		t.Fatalf("sum/count = %v/%d, want 158/9", hist.Sum, hist.Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(7)
	r.Histogram("h", "", []float64{2}).Observe(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Type  string  `json:"type"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 || doc.Metrics[0].Name != "a_total" || doc.Metrics[0].Value != 7 {
		t.Fatalf("unexpected doc: %+v", doc)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm_msgs_total", "total messages").Add(42)
	r.Gauge("vm_rate", "hit rate").Set(0.75)
	h := r.Histogram("vm_words", "payload words", []float64{1, 8})
	h.Observe(1)
	h.Observe(9)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP vm_msgs_total total messages",
		"# TYPE vm_msgs_total counter",
		"vm_msgs_total 42",
		"# TYPE vm_rate gauge",
		"vm_rate 0.75",
		"# TYPE vm_words histogram",
		`vm_words_bucket{le="1"} 1`,
		`vm_words_bucket{le="8"} 1`,
		`vm_words_bucket{le="+Inf"} 2`,
		"vm_words_sum 10",
		"vm_words_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPanicsOnDuplicateAndBadBounds(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	mustPanic(t, "duplicate", func() { r.Gauge("x", "") })
	mustPanic(t, "bounds", func() { r.Histogram("y", "", []float64{2, 1}) })
	mustPanic(t, "negative add", func() { r.Counter("z", "").Add(-1) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}
