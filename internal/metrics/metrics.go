// Package metrics is a small, dependency-free metrics registry for the
// simulator: named counters, gauges and fixed-bucket histograms with a
// per-run snapshot exported as JSON or Prometheus text exposition
// format.
//
// The registry is deliberately not a hot-path structure. The machine
// keeps raw per-processor counters (plain int64 fields, one goroutine
// each) during a run and folds them into the registry once per Run;
// the registry's own synchronization (atomics plus one mutex per
// histogram) therefore costs a handful of operations per run, not per
// message. Counters are cumulative over the life of the registry —
// Prometheus semantics — while gauges describe the most recent run.
//
// Snapshots are deterministic: metrics appear in registration order,
// so two snapshots of identical state render byte-identically.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down; it holds the most recent
// value set.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, in the
// Prometheus style: bucket i counts observations <= Bounds[i], with a
// final implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// AddBuckets folds pre-binned counts into the histogram: counts[i] is
// the number of observations in non-cumulative bucket i (the machine
// bins per processor during a run and merges here once per run). The
// slice must have len(Bounds())+1 entries; sum is the total of the
// underlying observed values.
func (h *Histogram) AddBuckets(counts []int64, sum float64) {
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("metrics: AddBuckets got %d buckets, histogram has %d", len(counts), len(h.counts)))
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
		h.n += c
	}
	h.sum += sum
	h.mu.Unlock()
}

// Bounds returns the upper bounds of the finite buckets.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// metricKind tags a registered metric.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered metric of any kind.
type metric struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// Registry holds named metrics and produces snapshots. Registration is
// expected at setup time; double registration of a name panics.
type Registry struct {
	mu     sync.Mutex
	order  []*metric
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	if !ValidName(m.name) {
		panic("metrics: invalid metric name " + m.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("metrics: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.order = append(r.order, m)
}

// ValidName reports whether name is a legal Prometheus metric name,
// [a-zA-Z_:][a-zA-Z0-9_:]*. Names cannot be escaped in the exposition
// format, only rejected, so registration refuses them up front.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a histogram with the given finite
// bucket upper bounds (ascending); a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending: " + name)
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// Le is the bucket's inclusive upper bound; +Inf on the last.
	Le float64 `json:"-"`
	// Count is the cumulative count of observations <= Le.
	Count int64 `json:"count"`
}

// MarshalJSON renders the bound the way Prometheus labels it ("+Inf"
// for the last bucket), since JSON numbers cannot carry infinities.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}{promFloat(b.Le), b.Count})
}

// MetricValue is one metric in a snapshot.
type MetricValue struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Value carries counter and gauge values (counters as exact
	// integers rendered in float64, which is lossless below 2^53).
	Value float64 `json:"value,omitempty"`
	// Buckets, Sum and Count carry histogram state.
	Buckets []BucketCount `json:"buckets,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Count   int64         `json:"count,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, in
// registration order.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	order := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	s := &Snapshot{Metrics: make([]MetricValue, 0, len(order))}
	for _, m := range order {
		mv := MetricValue{Name: m.name, Type: m.kind.String(), Help: m.help}
		switch m.kind {
		case kindCounter:
			mv.Value = float64(m.counter.Value())
		case kindGauge:
			mv.Value = m.gauge.Value()
		case kindHistogram:
			h := m.hist
			h.mu.Lock()
			cum := int64(0)
			mv.Buckets = make([]BucketCount, len(h.counts))
			for i, c := range h.counts {
				cum += c
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				mv.Buckets[i] = BucketCount{Le: le, Count: cum}
			}
			mv.Sum = h.sum
			mv.Count = h.n
			h.mu.Unlock()
		}
		s.Metrics = append(s.Metrics, mv)
	}
	return s
}

// Value returns the snapshot value of the named counter or gauge (for
// histograms, the observation count) and whether the name exists.
func (s *Snapshot) Value(name string) (float64, bool) {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			if s.Metrics[i].Type == "histogram" {
				return float64(s.Metrics[i].Count), true
			}
			return s.Metrics[i].Value, true
		}
	}
	return 0, false
}

// WriteJSON writes the snapshot as an indented JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format (version 0.0.4).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Type)
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", m.Name, escapeLabel(promFloat(b.Le)), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum %s\n", m.Name, promFloat(m.Sum))
			fmt.Fprintf(bw, "%s_count %d\n", m.Name, m.Count)
		default:
			fmt.Fprintf(bw, "%s %s\n", m.Name, promFloat(m.Value))
		}
	}
	return bw.Flush()
}

// The exposition format is line-oriented, so the only characters that
// can break it are escaped: backslash and line feed in HELP text, plus
// the double quote inside label values. Anything else passes through
// verbatim (Go's %q would emit \t and \u escapes Prometheus parsers do
// not understand).
var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// promFloat renders a float the way Prometheus expects: integral
// values without an exponent, +Inf spelled literally.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
