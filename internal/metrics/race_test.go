package metrics

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The serving layer snapshots the registry while runs are still
// folding their metrics in, so the registry must tolerate concurrent
// writers and snapshotters. This test hammers a counter, a gauge and a
// histogram from GOMAXPROCS goroutines while a snapshot loop runs,
// then checks three invariants on every snapshot taken mid-flight:
// counters are monotone across successive snapshots, histogram
// cumulative buckets are non-decreasing left to right with the +Inf
// bucket equal to Count (no torn bucket vectors), and after the
// writers join the totals are exact. Run it under -race to catch
// synchronization bugs the invariants cannot see.
func TestRegistryConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_us", "", []float64{1, 2, 4, 8})

	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const perWriter = 20000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(1)
				g.Set(float64(seed))
				h.Observe(float64((seed + i) % 10))
			}
		}(w)
	}

	snaps := 0
	var prevHits float64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			s := r.Snapshot()
			snaps++
			hits, ok := s.Value("hits_total")
			if !ok || hits < prevHits {
				t.Errorf("snapshot %d: counter went backwards: %g < %g", snaps, hits, prevHits)
				return
			}
			prevHits = hits
			hm := s.Metrics[2]
			if hm.Name != "lat_us" {
				t.Errorf("snapshot order changed: %q", hm.Name)
				return
			}
			var last int64 = -1
			for bi, b := range hm.Buckets {
				if b.Count < last {
					t.Errorf("snapshot %d: bucket %d cumulative count fell: %d < %d", snaps, bi, b.Count, last)
					return
				}
				last = b.Count
			}
			if hm.Buckets[len(hm.Buckets)-1].Count != hm.Count {
				t.Errorf("snapshot %d: torn histogram: +Inf bucket %d != count %d",
					snaps, hm.Buckets[len(hm.Buckets)-1].Count, hm.Count)
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-done
	if snaps == 0 {
		t.Fatal("snapshot loop never ran")
	}

	want := int64(writers * perWriter)
	if got := c.Value(); got != want {
		t.Fatalf("final counter = %d, want %d", got, want)
	}
	final := r.Snapshot()
	var hm *MetricValue
	for i := range final.Metrics {
		if final.Metrics[i].Name == "lat_us" {
			hm = &final.Metrics[i]
		}
	}
	if hm.Count != want {
		t.Fatalf("final histogram count = %d, want %d", hm.Count, want)
	}
	if hm.Buckets[len(hm.Buckets)-1].Count != want {
		t.Fatalf("final +Inf bucket = %d, want %d", hm.Buckets[len(hm.Buckets)-1].Count, want)
	}
	// Every writer observes the same multiset {0..9} x (perWriter/10),
	// so the sum is exact: writers * perWriter/10 * (0+..+9).
	if wantSum := float64(writers) * perWriter / 10 * 45; hm.Sum != wantSum {
		t.Fatalf("final histogram sum = %g, want %g", hm.Sum, wantSum)
	}
}
