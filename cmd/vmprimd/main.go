// Command vmprimd serves the simulator as a long-lived observability
// plane: an HTTP+JSON API over a pool of persistent machines and an
// in-memory run registry (see internal/serve and the README's
// "Running vmprimd" section).
//
// Usage:
//
//	vmprimd                          serve on 127.0.0.1:7790
//	vmprimd -addr :0 -addr-file a.txt
//	                                 pick a free port and write the
//	                                 bound address to a.txt (for
//	                                 scripts that need to find it)
//	vmprimd -workers 4 -retain 512   bigger executor pool and backlog
//
// API sketch (all JSON unless noted):
//
//	POST /runs                 submit {"exp":"E1","d":4,"n":64} -> 202 + run id
//	GET  /runs                 list retained runs
//	GET  /runs/{id}            run status
//	GET  /runs/{id}/wait       block until the run finishes
//	GET  /runs/{id}/profile    span-tree profile document
//	GET  /runs/{id}/trace      Chrome trace (load in Perfetto)
//	GET  /runs/{id}/critpath   critical-path document
//	GET  /runs/{id}/metrics    per-run metrics (?format=prom for text)
//	GET  /runs/{id}/postmortem flight-recorder report of a failed run
//	GET  /runs/{id}/events     live span/progress/congestion SSE stream
//	GET  /metrics              Prometheus exposition, serving + simulated
//	GET  /healthz              liveness
//
// The server shuts down cleanly on SIGINT/SIGTERM: it stops
// accepting, drains queued runs and retires the pooled machines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmprim/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7790", "listen address (host:port; port 0 picks a free one)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file once serving")
	workers := flag.Int("workers", 2, "executor worker goroutines")
	queueDepth := flag.Int("queue", 1024, "submission queue depth (full queue answers 503)")
	retain := flag.Int("retain", 256, "finished runs kept addressable before eviction")
	poolCap := flag.Int("pool", 4, "idle machines retained in the pool")
	flag.Parse()

	if err := run(*addr, *addrFile, serve.Options{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		RetainRuns:   *retain,
		PoolMachines: *poolCap,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "vmprimd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, opts serve.Options) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	srv := serve.New(opts)
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	//lint:allow goroutinelife Serve returns when Close/Shutdown below closes the listener, and errCh is buffered so the send never blocks
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "vmprimd: serving on http://%s (workers %d, retain %d, pool %d)\n",
		bound, opts.Workers, opts.RetainRuns, opts.PoolMachines)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		srv.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "vmprimd: %v, shutting down\n", s)
	}

	// Stop accepting and let in-flight requests finish, then drain the
	// executor queue and retire the machines.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "vmprimd: clean shutdown")
	return shutdownErr
}
