package main

import (
	"testing"

	"vmprim/internal/bench"
)

func TestRunOnePrintsTable(t *testing.T) {
	// A fast experiment end-to-end through the CLI's runner path.
	e, ok := bench.ByID("F1")
	if !ok {
		t.Fatal("F1 missing")
	}
	if err := runOne(e, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneSurfacesErrors(t *testing.T) {
	bad := bench.Experiment{ID: "ZZ", Title: "broken", Run: func() (*bench.Table, error) {
		return nil, errTest
	}}
	if err := runOne(bad, false); err == nil {
		t.Fatal("error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test failure" }
