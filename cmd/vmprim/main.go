// Command vmprim regenerates the tables and figures of the
// reconstructed SPAA 1989 evaluation (see DESIGN.md and
// EXPERIMENTS.md).
//
// Usage:
//
//	vmprim -list             list experiment ids
//	vmprim -exp E3           run one experiment and print its table
//	vmprim -exp all          run every experiment (several minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vmprim/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to run (E1..E5, F1..F3, A1..A3, or 'all')")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-3s  %s\n", e.ID, e.Title)
		}
	case *exp == "":
		flag.Usage()
		os.Exit(2)
	case strings.EqualFold(*exp, "all"):
		for _, e := range bench.All() {
			if err := runOne(e); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	default:
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func runOne(e bench.Experiment) error {
	start := time.Now()
	t, err := e.Run()
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	fmt.Printf("  [host time %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
