// Command vmprim regenerates the tables and figures of the
// reconstructed SPAA 1989 evaluation (see DESIGN.md and
// EXPERIMENTS.md) and profiles representative runs.
//
// Usage:
//
//	vmprim -list             list experiment ids
//	vmprim -exp E3           run one experiment and print its table
//	vmprim -exp all          run every experiment (several minutes)
//	vmprim -exp E3 -json     print the table as JSON
//	vmprim -profile E4       profile a representative run: span tree on
//	                         stdout, Chrome trace JSON to
//	                         vmprim-trace-e4.json (load in Perfetto)
//	vmprim -profile E1 -json machine-readable profile on stdout
//	vmprim -profile E1 -metrics-out m.json
//	                         also snapshot the run's metrics registry
//	                         (a .prom suffix selects Prometheus text)
//	vmprim -critpath E4      trace the run's critical path: makespan
//	                         attribution and the cost-model conformance
//	                         report on stdout ("why is this run slow?")
//	vmprim -critpath E4 -model ipsc -critpath-out cp.json
//	                         same on the iPSC cost model, with the
//	                         machine-readable document written to a file
//	vmprim -demo-deadlock    run a deliberately deadlocked program and
//	                         print its post-mortem report (with the
//	                         critical path up to the deadlock)
//
// Every mode accepts -recv-timeout to change the deadlock watchdog's
// default arming interval (default 30s; raise it under heavy host
// load, lower it when iterating on a hang) and -postmortem-out to
// write the structured post-mortem JSON of a failed run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
	"vmprim/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to run (E1..E5, F1..F3, A1..A4, X1..X3, or 'all')")
	profile := flag.String("profile", "", "profile a representative run of an experiment (E1..E5)")
	critpath := flag.String("critpath", "", "trace the critical path of a representative run (E1..E5)")
	critpathOut := flag.String("critpath-out", "", "write the critical-path JSON of a -critpath or -profile run to this path")
	model := flag.String("model", "cm2", "cost model for -critpath (cm2 or ipsc)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	traceOut := flag.String("trace-out", "", "Chrome trace output path for -profile (default vmprim-trace-<id>.json, '-' to skip)")
	recvTimeout := flag.Duration("recv-timeout", 0, "deadlock watchdog arming interval (0 keeps the 30s default)")
	pmOut := flag.String("postmortem-out", "", "write the post-mortem JSON of a failed run to this path")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot of a -profile or -demo-deadlock run (.prom suffix selects Prometheus text, otherwise JSON)")
	demoDeadlock := flag.Bool("demo-deadlock", false, "run a deliberately deadlocked exchange and print its post-mortem")
	flag.Parse()

	if *recvTimeout > 0 {
		hypercube.SetDefaultRecvTimeout(*recvTimeout)
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-3s  %s\n", e.ID, e.Title)
		}
	case *demoDeadlock:
		if err := runDemoDeadlock(*jsonOut, *pmOut, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "demo-deadlock: %v\n", err)
			os.Exit(1)
		}
	case *critpath != "":
		if err := runCritPath(*critpath, *jsonOut, *critpathOut, *model); err != nil {
			writePostMortem(err, *pmOut)
			fmt.Fprintf(os.Stderr, "%s: %v\n", *critpath, err)
			os.Exit(1)
		}
	case *profile != "":
		if err := runProfile(*profile, *jsonOut, *traceOut, *metricsOut, *critpathOut); err != nil {
			writePostMortem(err, *pmOut)
			fmt.Fprintf(os.Stderr, "%s: %v\n", *profile, err)
			os.Exit(1)
		}
	case *exp == "":
		flag.Usage()
		os.Exit(2)
	case strings.EqualFold(*exp, "all"):
		for _, e := range bench.All() {
			if err := runOne(e, *jsonOut); err != nil {
				writePostMortem(err, *pmOut)
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	default:
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(e, *jsonOut); err != nil {
			writePostMortem(err, *pmOut)
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func runOne(e bench.Experiment, jsonOut bool) error {
	start := time.Now()
	t, err := e.Run()
	if err != nil {
		return err
	}
	if jsonOut {
		return writeTableJSON(os.Stdout, t)
	}
	t.Fprint(os.Stdout)
	fmt.Printf("  [host time %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeTableJSON emits one experiment table as a JSON object, for
// scripted consumption of the evaluation tables.
func writeTableJSON(w io.Writer, t *bench.Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   string     `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}

// writePostMortem extracts the structured post-mortem attached to a
// failed run's error, if any, and writes it as JSON to path.
func writePostMortem(err error, path string) {
	if path == "" || err == nil {
		return
	}
	var re *hypercube.RunError
	if !errors.As(err, &re) || re.Report == nil {
		fmt.Fprintf(os.Stderr, "no post-mortem attached to the error; %s not written\n", path)
		return
	}
	f, ferr := os.Create(path)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, ferr)
		return
	}
	if werr := re.Report.WriteJSON(f); werr != nil {
		fmt.Fprintln(os.Stderr, werr)
	}
	if cerr := f.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, cerr)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote post-mortem to %s\n", path)
}

// writeMetrics writes a machine's metrics snapshot to path; a .prom
// suffix selects the Prometheus text exposition, anything else JSON.
func writeMetrics(m *hypercube.Machine, path string) error {
	if path == "" {
		return nil
	}
	snap := m.Metrics().Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = snap.WritePrometheus(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", path)
	}
	return err
}

// runDemoDeadlock executes a deliberately wrong SPMD program — the
// procs pair off for an Exchange but disagree about the dimension, so
// every processor blocks in Recv on a message that never comes — and
// prints the post-mortem report the watchdog produces. Exit status is
// nonzero unless the report shows every processor blocked, so
// scripts/check.sh can validate the post-mortem path end to end.
func runDemoDeadlock(jsonOut bool, pmOut, metricsOut string) error {
	m, err := hypercube.New(2, costmodel.CM2())
	if err != nil {
		return err
	}
	defer m.Close()
	// The post-mortem then carries the critical path up to the
	// deadlock, showing which causal chain the machine was stuck behind.
	m.EnableCritPath(true)
	// Short timeout: the program is known-deadlocked, no point waiting
	// out the default 30s. An explicit -recv-timeout still applies via
	// the machine-wide default set in main.
	if m.RecvTimeout() > time.Second {
		m.SetRecvTimeout(time.Second)
	}
	_, err = m.Run(func(p *hypercube.Proc) {
		// Procs 0 and 3 exchange on dim 0; procs 1 and 2 on dim 1.
		// Nobody's partner agrees, so all four block after sending.
		d := (p.ID() & 1) ^ ((p.ID() >> 1) & 1)
		//lint:allow collorder the mismatched pairing is the point: -demo-deadlock exists to show the watchdog's post-mortem on exactly this bug
		//lint:allow recyclecheck the exchange never completes, so there is no buffer to recycle; the run is torn down by the watchdog
		//lint:allow commverify the model checker is right — this protocol deadlocks on the d=2 cube by design, and the demo exists to show the runtime post-mortem on exactly the bug the static counterexample describes
		p.Exchange(d, 7, []float64{float64(p.ID()), 1, 2})
	})
	if err == nil {
		return fmt.Errorf("demo program did not deadlock")
	}
	var re *hypercube.RunError
	if !errors.As(err, &re) || re.Report == nil {
		return fmt.Errorf("no post-mortem attached: %w", err)
	}
	rep := re.Report
	if jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		rep.WriteText(os.Stdout)
	}
	writePostMortem(err, pmOut)
	if err := writeMetrics(m, metricsOut); err != nil {
		return err
	}
	if rep.Blocked != rep.P {
		return fmt.Errorf("report shows %d/%d procs blocked, want all", rep.Blocked, rep.P)
	}
	return nil
}

// runCritPath executes the experiment's representative workload with
// the critical-path tracer on and prints the makespan attribution and
// cost-model conformance report.
func runCritPath(id string, jsonOut bool, outPath, model string) error {
	var params costmodel.Params
	switch strings.ToLower(model) {
	case "", "cm2":
		params = costmodel.CM2()
	case "ipsc":
		params = costmodel.IPSC()
	default:
		return fmt.Errorf("unknown cost model %q (have cm2, ipsc)", model)
	}
	res, err := bench.ProfileRunOpts(id, bench.ProfileOpts{CritPath: true, Params: &params})
	if err != nil {
		return err
	}
	cp := res.CritPath
	if cp == nil {
		return fmt.Errorf("no critical path recorded")
	}
	if err := cp.Check(); err != nil {
		return fmt.Errorf("critical-path invariants violated: %w", err)
	}
	if jsonOut {
		if err := cp.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Printf("%s — %s  [model %s]\n", res.ID, res.Desc, strings.ToLower(model))
		for i, tt := range res.Times {
			fmt.Printf("  run %d: %.1f simulated us\n", i+1, float64(tt))
		}
		fmt.Println()
		cp.WriteText(os.Stdout)
	}
	return writeCritPath(cp, outPath)
}

// writeCritPath writes the critical-path JSON document to path ("" is
// a no-op).
func writeCritPath(cp *obs.CritPath, path string) error {
	if path == "" || cp == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := cp.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Fprintf(os.Stderr, "wrote critical path to %s\n", path)
	}
	return werr
}

// runProfile executes the experiment's representative workload with
// the profiler on, prints the span tree (or profile JSON), and writes
// the Chrome trace next to the working directory.
func runProfile(id string, jsonOut bool, traceOut, metricsOut, critpathOut string) error {
	res, err := bench.ProfileRun(id, true)
	if err != nil {
		return err
	}
	pf := res.Profile
	if err := pf.Check(); err != nil {
		return fmt.Errorf("profile invariants violated: %w", err)
	}
	if err := writeCritPath(res.CritPath, critpathOut); err != nil {
		return err
	}
	if jsonOut {
		if err := pf.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Printf("%s — %s\n", res.ID, res.Desc)
		for i, tt := range res.Times {
			fmt.Printf("  run %d: %.1f simulated us\n", i+1, float64(tt))
		}
		fmt.Println()
		pf.WriteTree(os.Stdout)
	}
	if metricsOut != "" && res.Metrics != nil {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		werr := error(nil)
		if strings.HasSuffix(metricsOut, ".prom") {
			werr = res.Metrics.WritePrometheus(f)
		} else {
			werr = res.Metrics.WriteJSON(f)
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", metricsOut)
	}
	if traceOut == "-" {
		return nil
	}
	if traceOut == "" {
		traceOut = fmt.Sprintf("vmprim-trace-%s.json", strings.ToLower(res.ID))
	}
	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	if err := pf.ChromeTrace(f, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", traceOut)
	return nil
}
