// Command vmprim regenerates the tables and figures of the
// reconstructed SPAA 1989 evaluation (see DESIGN.md and
// EXPERIMENTS.md) and profiles representative runs.
//
// Usage:
//
//	vmprim -list             list experiment ids
//	vmprim -exp E3           run one experiment and print its table
//	vmprim -exp all          run every experiment (several minutes)
//	vmprim -exp E3 -json     print the table as JSON
//	vmprim -profile E4       profile a representative run: span tree on
//	                         stdout, Chrome trace JSON to
//	                         vmprim-trace-e4.json (load in Perfetto)
//	vmprim -profile E1 -json machine-readable profile on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vmprim/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to run (E1..E5, F1..F3, A1..A4, X1..X3, or 'all')")
	profile := flag.String("profile", "", "profile a representative run of an experiment (E1..E5)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	traceOut := flag.String("trace-out", "", "Chrome trace output path for -profile (default vmprim-trace-<id>.json, '-' to skip)")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-3s  %s\n", e.ID, e.Title)
		}
	case *profile != "":
		if err := runProfile(*profile, *jsonOut, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *profile, err)
			os.Exit(1)
		}
	case *exp == "":
		flag.Usage()
		os.Exit(2)
	case strings.EqualFold(*exp, "all"):
		for _, e := range bench.All() {
			if err := runOne(e, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	default:
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(e, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func runOne(e bench.Experiment, jsonOut bool) error {
	start := time.Now()
	t, err := e.Run()
	if err != nil {
		return err
	}
	if jsonOut {
		return writeTableJSON(os.Stdout, t)
	}
	t.Fprint(os.Stdout)
	fmt.Printf("  [host time %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeTableJSON emits one experiment table as a JSON object, for
// scripted consumption of the evaluation tables.
func writeTableJSON(w io.Writer, t *bench.Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   string     `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}

// runProfile executes the experiment's representative workload with
// the profiler on, prints the span tree (or profile JSON), and writes
// the Chrome trace next to the working directory.
func runProfile(id string, jsonOut bool, traceOut string) error {
	res, err := bench.ProfileRun(id, true)
	if err != nil {
		return err
	}
	pf := res.Profile
	if err := pf.Check(); err != nil {
		return fmt.Errorf("profile invariants violated: %w", err)
	}
	if jsonOut {
		if err := pf.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Printf("%s — %s\n", res.ID, res.Desc)
		for i, tt := range res.Times {
			fmt.Printf("  run %d: %.1f simulated us\n", i+1, float64(tt))
		}
		fmt.Println()
		pf.WriteTree(os.Stdout)
	}
	if traceOut == "-" {
		return nil
	}
	if traceOut == "" {
		traceOut = fmt.Sprintf("vmprim-trace-%s.json", strings.ToLower(res.ID))
	}
	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	if err := pf.ChromeTrace(f, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", traceOut)
	return nil
}
