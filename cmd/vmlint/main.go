// Command vmlint runs the repository's static-analysis suite: nine
// analyzers that enforce at compile time the invariants the simulator
// otherwise only checks (or fails to check) at run time.
//
//	recyclecheck    pooled buffers from GetBuf/Recv are recycled,
//	                returned, or handed off — no pool leaks
//	spanbalance     BeginSpan/EndSpan pairs balance on every
//	                control-flow path
//	spmdsym         collectives are not control-dependent on
//	                processor identity inside SPMD code
//	collorder       all processors execute the same communication
//	                sequence with agreeing dims, masks, tags and roots
//	simdeterminism  no wall-clock reads, global rand, or
//	                map-order-dependent communication in the simulator
//	commverify      point-to-point protocols are deadlock-free:
//	                every concretizable SPMD scope is bounded
//	                model-checked on cubes up to d=4, and unmatched
//	                sends, tag mismatches, and cyclic waits are
//	                reported with a counterexample schedule
//	lockdiscipline  in the host-concurrent packages (the serving
//	                plane), mutexes balance Lock/Unlock on every
//	                path, are never re-acquired on a path that holds
//	                them, and guard no blocking operation
//	goroutinelife   every go statement in those packages carries a
//	                termination obligation: a done-channel select, a
//	                WaitGroup pairing, or a reasoned //lint:allow
//	chanprotocol    channels have a single closing owner, no path
//	                sends on a channel another path closed, and
//	                go/defer closures in loops do not capture
//	                variables the loop keeps writing
//
// Two more run implicitly: collectives summarizes which functions
// perform collectives and which return identity-derived values, and
// hostconc summarizes which functions may block and which mutexes
// they acquire. Both export their summaries as package facts so the
// diagnostic analyzers see through package boundaries.
//
// Usage, standalone:
//
//	vmlint ./...                # from the module root
//	vmlint ./internal/apps
//	vmlint -fix ./...           # apply suggested fixes in place
//	vmlint -diff ./...          # print fixes as diffs, change nothing
//	vmlint -json ./...          # findings as a JSON array on stdout
//	vmlint -suppressions ./...  # audit //lint:allow directives
//
// or as a go vet tool, which integrates with the build cache and
// carries facts between packages through vet's vetx files:
//
//	go vet -vettool=$(command -v vmlint) ./...
//
// Deliberate exceptions are annotated in the source:
//
//	//lint:allow <analyzer> <reason>
//
// on the diagnostic's line, the line above it, or in the doc comment
// of the enclosing declaration. The reason is mandatory, and a
// directive that no longer suppresses anything is itself a finding.
//
// Exit status: 0 for no findings, 2 for findings (with -fix, findings
// that remain after the fixes were applied), 1 for operational errors
// (unparseable packages, type errors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"

	"vmprim/internal/analysis/collorder"
	"vmprim/internal/analysis/commverify"
	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/hostconc"
	"vmprim/internal/analysis/hostconc/chanprotocol"
	"vmprim/internal/analysis/hostconc/goroutinelife"
	"vmprim/internal/analysis/hostconc/lockdiscipline"
	"vmprim/internal/analysis/recyclecheck"
	"vmprim/internal/analysis/simdeterminism"
	"vmprim/internal/analysis/spanbalance"
	"vmprim/internal/analysis/spmdsym"
)

func analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		recyclecheck.Analyzer,
		spanbalance.Analyzer,
		spmdsym.Analyzer,
		collorder.Analyzer,
		simdeterminism.Analyzer,
		commverify.Analyzer,
		hostconc.Analyzer,
		lockdiscipline.Analyzer,
		goroutinelife.Analyzer,
		chanprotocol.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// go vet -vettool invokes the tool with -V=full and then with
	// *.cfg files; UnitcheckerMain handles (and exits) in that mode.
	if framework.UnitcheckerMain(args, analyzers()) {
		return
	}

	flags := flag.NewFlagSet("vmlint", flag.ExitOnError)
	fix := flags.Bool("fix", false, "apply suggested fixes to the source files")
	diff := flags.Bool("diff", false, "print suggested fixes as unified diffs without applying them")
	jsonOut := flags.Bool("json", false, "print findings as a JSON array on stdout instead of text on stderr")
	suppressions := flags.Bool("suppressions", false, "list //lint:allow directives instead of findings")
	flags.Parse(args)
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fatal(err)
	}
	res, err := framework.Run(pkgs, analyzers())
	if err != nil {
		fatal(err)
	}

	if *suppressions {
		listSuppressions(res.Suppressions)
		return
	}

	if *jsonOut {
		reportJSON(res.Findings)
		return
	}

	if *fix || *diff {
		fixed, err := framework.ApplyFixes(fsetOf(pkgs), res.Findings)
		if err != nil {
			fatal(err)
		}
		if *diff {
			var paths []string
			for path := range fixed {
				paths = append(paths, path)
			}
			sort.Strings(paths)
			for _, path := range paths {
				old, err := os.ReadFile(path)
				if err != nil {
					fatal(err)
				}
				fmt.Print(framework.Diff(path, old, fixed[path]))
			}
		} else if err := framework.WriteFixedFiles(fixed); err != nil {
			fatal(err)
		} else if len(fixed) > 0 {
			fmt.Fprintf(os.Stderr, "vmlint: fixed %d file(s)\n", len(fixed))
		}
		if *fix {
			// Report only what the fixes did not resolve: findings that
			// carried no fix. Fixed diagnostics are gone from the source.
			var remaining []framework.Finding
			for _, f := range res.Findings {
				if len(f.Fixes) == 0 {
					remaining = append(remaining, f)
				}
			}
			report(remaining)
			return
		}
		report(res.Findings)
		return
	}

	report(res.Findings)
}

// report prints findings and exits 2 if there are any.
func report(findings []framework.Finding) {
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// jsonFinding is the machine-readable diagnostic shape: one object
// per finding, stable field names, for CI annotators and editors.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fix      string `json:"fix,omitempty"`
}

// findingsJSON converts findings to the -json wire shape. The fix
// field carries the first suggested fix's description — the edits
// themselves stay with -fix/-diff, which can apply them.
func findingsJSON(findings []framework.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		jf := jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		if len(f.Fixes) > 0 {
			jf.Fix = f.Fixes[0].Message
		}
		out = append(out, jf)
	}
	return out
}

// reportJSON prints the findings as a JSON array on stdout (always an
// array, [] when clean, so consumers never special-case) and keeps
// the text mode's exit contract.
func reportJSON(findings []framework.Finding) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findingsJSON(findings)); err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// listSuppressions prints the suppression audit: every live
// //lint:allow directive with its reason and whether it still
// suppresses anything.
func listSuppressions(sup []framework.Suppression) {
	for _, s := range sup {
		status := "used"
		if !s.Used {
			status = "STALE"
		}
		fmt.Printf("%s:%d: %-5s //lint:allow %s — %s\n", s.File, s.Line, status, s.Analyzer, s.Reason)
	}
	if len(sup) == 0 {
		fmt.Println("no //lint:allow directives")
	}
}

// fsetOf returns the FileSet shared by the loaded packages.
func fsetOf(pkgs []*framework.Package) *token.FileSet {
	if len(pkgs) == 0 {
		return token.NewFileSet()
	}
	return pkgs[0].Fset
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmlint:", err)
	os.Exit(1)
}
