// Command vmlint runs the repository's static-analysis suite: four
// analyzers that enforce at compile time the invariants the simulator
// otherwise only checks (or fails to check) at run time.
//
//	recyclecheck    pooled buffers from GetBuf/Recv are recycled,
//	                returned, or handed off — no pool leaks
//	spanbalance     BeginSpan/EndSpan pairs balance on every
//	                control-flow path
//	spmdsym         collectives are not control-dependent on
//	                processor identity inside SPMD code
//	simdeterminism  no wall-clock reads, global rand, or
//	                map-order-dependent communication in the simulator
//
// Usage, standalone:
//
//	vmlint ./...               # from the module root
//	vmlint ./internal/apps
//
// or as a go vet tool, which integrates with the build cache:
//
//	go vet -vettool=$(command -v vmlint) ./...
//
// Deliberate exceptions are annotated in the source:
//
//	//lint:allow <analyzer> <reason>
//
// on the diagnostic's line, the line above it, or in the doc comment
// of the enclosing declaration. The reason is mandatory.
//
// Exit status: 0 for no findings, 2 for findings, 1 for operational
// errors (unparseable packages, type errors).
package main

import (
	"fmt"
	"os"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/recyclecheck"
	"vmprim/internal/analysis/simdeterminism"
	"vmprim/internal/analysis/spanbalance"
	"vmprim/internal/analysis/spmdsym"
)

func analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		recyclecheck.Analyzer,
		spanbalance.Analyzer,
		spmdsym.Analyzer,
		simdeterminism.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// go vet -vettool invokes the tool with -V=full and then with
	// *.cfg files; UnitcheckerMain handles (and exits) in that mode.
	if framework.UnitcheckerMain(args, analyzers()) {
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := framework.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmlint:", err)
		os.Exit(1)
	}
	findings, err := framework.Run(pkgs, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmlint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}
