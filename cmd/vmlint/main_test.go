package main

import (
	"encoding/json"
	"go/token"
	"testing"

	"vmprim/internal/analysis/framework"
)

// TestFindingsJSON pins the -json wire shape: stable field names, fix
// description carried when present and omitted when not, and an empty
// slice (not null) for a clean run — CI consumers parse this.
func TestFindingsJSON(t *testing.T) {
	in := []framework.Finding{
		{
			Analyzer: "commverify",
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
			Message:  "protocol deadlocks on the d=2 cube",
		},
		{
			Analyzer: "recyclecheck",
			Pos:      token.Position{Filename: "b.go", Line: 10, Column: 2},
			Message:  "buffer never recycled",
			Fixes: []framework.SuggestedFix{
				{Message: "add p.Recycle(buf)"},
				{Message: "second fix must not leak into the report"},
			},
		},
	}
	got, err := json.Marshal(findingsJSON(in))
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"file":"a.go","line":3,"col":7,"analyzer":"commverify","message":"protocol deadlocks on the d=2 cube"},` +
		`{"file":"b.go","line":10,"col":2,"analyzer":"recyclecheck","message":"buffer never recycled","fix":"add p.Recycle(buf)"}]`
	if string(got) != want {
		t.Errorf("wire shape drifted:\n got: %s\nwant: %s", got, want)
	}

	empty, err := json.Marshal(findingsJSON(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]" {
		t.Errorf("clean run must encode as [], got %s", empty)
	}
}

// TestAnalyzerRoster guards the registration list: every analyzer the
// docs promise, exactly once, commverify included.
func TestAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"recyclecheck": false, "spanbalance": false, "spmdsym": false,
		"collorder": false, "simdeterminism": false, "commverify": false,
	}
	for _, a := range analyzers() {
		seen, ok := want[a.Name]
		if !ok {
			t.Errorf("unexpected analyzer %q registered", a.Name)
		}
		if seen {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		want[a.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %q not registered", name)
		}
	}
}
