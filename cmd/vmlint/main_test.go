package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"vmprim/internal/analysis/framework"
)

// TestFindingsJSON pins the -json wire shape: stable field names, fix
// description carried when present and omitted when not, and an empty
// slice (not null) for a clean run — CI consumers parse this.
func TestFindingsJSON(t *testing.T) {
	in := []framework.Finding{
		{
			Analyzer: "commverify",
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
			Message:  "protocol deadlocks on the d=2 cube",
		},
		{
			Analyzer: "recyclecheck",
			Pos:      token.Position{Filename: "b.go", Line: 10, Column: 2},
			Message:  "buffer never recycled",
			Fixes: []framework.SuggestedFix{
				{Message: "add p.Recycle(buf)"},
				{Message: "second fix must not leak into the report"},
			},
		},
	}
	got, err := json.Marshal(findingsJSON(in))
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"file":"a.go","line":3,"col":7,"analyzer":"commverify","message":"protocol deadlocks on the d=2 cube"},` +
		`{"file":"b.go","line":10,"col":2,"analyzer":"recyclecheck","message":"buffer never recycled","fix":"add p.Recycle(buf)"}]`
	if string(got) != want {
		t.Errorf("wire shape drifted:\n got: %s\nwant: %s", got, want)
	}

	empty, err := json.Marshal(findingsJSON(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]" {
		t.Errorf("clean run must encode as [], got %s", empty)
	}

	// The hostconc family rides the same wire: a lockdiscipline finding
	// with its defer-Unlock fix serializes with the analyzer name CI
	// keys annotations on.
	hc, err := json.Marshal(findingsJSON([]framework.Finding{{
		Analyzer: "lockdiscipline",
		Pos:      token.Position{Filename: "sse.go", Line: 42, Column: 2},
		Message:  "function ends with b.mu still locked (Lock without a matching Unlock)",
		Fixes:    []framework.SuggestedFix{{Message: "defer the matching Unlock"}},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	wantHC := `[{"file":"sse.go","line":42,"col":2,"analyzer":"lockdiscipline",` +
		`"message":"function ends with b.mu still locked (Lock without a matching Unlock)",` +
		`"fix":"defer the matching Unlock"}]`
	if string(hc) != wantHC {
		t.Errorf("hostconc wire shape drifted:\n got: %s\nwant: %s", hc, wantHC)
	}
}

// TestProblemMatcherCoversAnalyzers proves the CI problem matcher's
// regexp captures every registered analyzer's findings — the analyzer
// names are the `code` capture group, so an all-lowercase name is part
// of each analyzer's contract.
func TestProblemMatcherCoversAnalyzers(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "vmlint-problem-matcher.json"))
	if err != nil {
		t.Fatal(err)
	}
	var matcher struct {
		ProblemMatcher []struct {
			Pattern []struct {
				Regexp string `json:"regexp"`
				Code   int    `json:"code"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(data, &matcher); err != nil {
		t.Fatal(err)
	}
	if len(matcher.ProblemMatcher) != 1 || len(matcher.ProblemMatcher[0].Pattern) != 1 {
		t.Fatalf("unexpected matcher shape: %s", data)
	}
	pat := matcher.ProblemMatcher[0].Pattern[0]
	re, err := regexp.Compile(pat.Regexp)
	if err != nil {
		t.Fatalf("matcher regexp does not compile: %v", err)
	}
	for _, a := range analyzers() {
		line := framework.Finding{
			Analyzer: a.Name,
			Pos:      token.Position{Filename: "internal/serve/sse.go", Line: 7, Column: 3},
			Message:  "sample finding",
		}.String()
		m := re.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("matcher does not capture %s finding: %q", a.Name, line)
			continue
		}
		if m[pat.Code] != a.Name {
			t.Errorf("matcher code group captured %q, want %q in %q", m[pat.Code], a.Name, line)
		}
	}
}

// TestAnalyzerRoster guards the registration list: every analyzer the
// docs promise, exactly once, the hostconc family included.
func TestAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"recyclecheck": false, "spanbalance": false, "spmdsym": false,
		"collorder": false, "simdeterminism": false, "commverify": false,
		"hostconc": false, "lockdiscipline": false, "goroutinelife": false,
		"chanprotocol": false,
	}
	for _, a := range analyzers() {
		seen, ok := want[a.Name]
		if !ok {
			t.Errorf("unexpected analyzer %q registered", a.Name)
		}
		if seen {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		want[a.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %q not registered", name)
		}
	}
}
