package main

import (
	"net/http/httptest"
	"testing"

	"vmprim/internal/bench"
	"vmprim/internal/serve"
	"vmprim/internal/testutil"
)

// newLoadTarget stands up the same in-process server main builds,
// behind httptest so the harness exercises real HTTP.
func newLoadTarget(t *testing.T) string {
	t.Helper()
	before := testutil.Snapshot()
	t.Cleanup(func() { testutil.CheckLeaks(t, before) })
	srv := serve.New(serve.Options{Workers: 2, RetainRuns: 64, QueueDepth: 64, PoolMachines: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

// TestDriveInProcess runs a miniature load session end to end and
// checks the latency document drive assembles: counts, percentile
// ordering and the histogram invariants the check.sh smoke asserts on
// the real BENCH_4 snapshot.
func TestDriveInProcess(t *testing.T) {
	base := newLoadTarget(t)
	spec, err := bench.RunSpec{Exp: "E1", D: 3, N: 32}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	const total, conc = 12, 4
	doc, driveErr := drive(base, spec, total, conc)
	if driveErr != nil {
		t.Fatal(driveErr)
	}
	res := doc.Results
	if res.Completed != total || res.Failed != 0 {
		t.Fatalf("completed %d / failed %d, want %d/0", res.Completed, res.Failed, total)
	}
	lat := res.LatencyUs
	if !(0 < lat.P50 && lat.P50 <= lat.P95 && lat.P95 <= lat.P99 && lat.P99 <= res.MaxUs) {
		t.Fatalf("percentiles not ordered: %+v, max %g", lat, res.MaxUs)
	}
	if res.MeanUs <= 0 || res.WallSecs <= 0 || res.RunsPerSec <= 0 {
		t.Fatalf("degenerate aggregates: %+v", res)
	}
	if len(res.Counts) != len(latencyBoundsUs)+1 {
		t.Fatalf("histogram has %d counts for %d bounds", len(res.Counts), len(latencyBoundsUs))
	}
	if inf := res.Counts[len(res.Counts)-1]; inf != total {
		t.Fatalf("+Inf bucket holds %d, want the full %d sample", inf, total)
	}
	if doc.Config.Runs != total || doc.Config.Concurrency != conc {
		t.Fatalf("config block drifted: %+v", doc.Config)
	}
}

// TestDriveReportsFailures: a spec the server rejects must be counted
// as failed and surfaced as drive's error, never silently completed.
func TestDriveReportsFailures(t *testing.T) {
	base := newLoadTarget(t)
	const total, conc = 3, 2
	doc, driveErr := drive(base, bench.RunSpec{Exp: "E9"}, total, conc)
	if driveErr == nil {
		t.Fatal("drive accepted a spec the server rejects")
	}
	if doc.Results.Failed != total || doc.Results.Completed != 0 {
		t.Fatalf("failed %d / completed %d, want %d/0",
			doc.Results.Failed, doc.Results.Completed, total)
	}
}
