// Command vmload drives a vmprimd server with concurrent workload
// submissions and records the end-to-end latency distribution — the
// wall time from POST /runs to the run's terminal /wait response.
//
// Usage:
//
//	vmload                       1000 runs, 32 submitters, against an
//	                             in-process server (no network setup)
//	vmload -addr http://127.0.0.1:7790
//	                             drive an external vmprimd
//	vmload -runs 2000 -c 64 -exp E2 -d 4 -size 64
//	vmload -out BENCH_4.json     write the latency snapshot
//
// The workload defaults to a small E1 (d=4, n=64): the point is
// serving-plane latency under concurrency, not simulator throughput,
// and the small cube keeps a thousand runs tractable on a one-core
// host. Exact percentiles come from the full sorted sample; the
// histogram block carries the same distribution in fixed buckets plus
// the interpolated estimates a Prometheus query would compute from
// them. Exit status is nonzero if any submission or run fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/metrics"
	"vmprim/internal/serve"
)

// latencyBoundsUs are the recorded histogram buckets, 100µs..10s.
var latencyBoundsUs = []float64{
	100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4,
	1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7,
}

type loadConfig struct {
	Runs        int           `json:"runs"`
	Concurrency int           `json:"concurrency"`
	Spec        bench.RunSpec `json:"spec"`
	Server      string        `json:"server"`
	Workers     int           `json:"server_workers,omitempty"`
}

type percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

type loadResults struct {
	Completed  int     `json:"completed"`
	Failed     int     `json:"failed"`
	WallSecs   float64 `json:"wall_seconds"`
	RunsPerSec float64 `json:"throughput_runs_per_sec"`
	// LatencyUs holds exact sample percentiles of the submit-to-done
	// wall latency; MeanUs and MaxUs bound the distribution.
	LatencyUs percentiles `json:"latency_us"`
	MeanUs    float64     `json:"mean_us"`
	MaxUs     float64     `json:"max_us"`
	// HistEstimateUs re-derives the percentiles from the bucketed
	// histogram below by linear interpolation — what a dashboard would
	// show — as a cross-check on the bucket layout.
	HistEstimateUs percentiles `json:"histogram_estimate_us"`
	BoundsUs       []float64   `json:"histogram_bounds_us"`
	Counts         []int64     `json:"histogram_counts"`
}

type benchDoc struct {
	Description string      `json:"description"`
	Host        hostInfo    `json:"host"`
	Timestamp   string      `json:"timestamp"`
	Config      loadConfig  `json:"config"`
	Results     loadResults `json:"results"`
}

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

func main() {
	addr := flag.String("addr", "", "vmprimd base URL (empty spawns an in-process server)")
	runs := flag.Int("runs", 1000, "total submissions")
	conc := flag.Int("c", 32, "concurrent submitters")
	exp := flag.String("exp", "E1", "experiment family to submit (E1..E5)")
	dim := flag.Int("d", 4, "cube dimension (0 = experiment default)")
	size := flag.Int("size", 64, "problem size (0 = experiment default)")
	model := flag.String("model", "", "cost model (cm2 or ipsc)")
	workers := flag.Int("server-workers", 2, "executor workers for the in-process server")
	out := flag.String("out", "", "write the latency snapshot JSON to this path")
	flag.Parse()

	spec := bench.RunSpec{Exp: *exp, D: *dim, N: *size, Model: *model}
	norm, err := spec.Normalized()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmload: %v\n", err)
		os.Exit(2)
	}

	base := *addr
	serverDesc := base
	if base == "" {
		srv := serve.New(serve.Options{
			Workers: *workers,
			// Retention never below in-flight depth, so /wait can't lose
			// a run to eviction mid-poll.
			RetainRuns:   maxInt(256, 4**conc),
			QueueDepth:   maxInt(1024, 2**runs),
			PoolMachines: 4,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vmload: %v\n", err)
			os.Exit(2)
		}
		hs := &http.Server{Handler: srv.Handler()}
		//lint:allow goroutinelife Serve returns when the deferred hs.Close closes the listener at process exit
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		serverDesc = "in-process"
	}

	doc, failedErr := drive(base, norm, *runs, *conc)
	doc.Config.Server = serverDesc
	if serverDesc == "in-process" {
		doc.Config.Workers = *workers
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if *out != "" {
		var buf bytes.Buffer
		fenc := json.NewEncoder(&buf)
		fenc.SetIndent("", "  ")
		if err := fenc.Encode(doc); err == nil {
			err = os.WriteFile(*out, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vmload: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "vmload: wrote %s\n", *out)
	} else {
		_ = enc.Encode(doc)
	}
	fmt.Fprintf(os.Stderr,
		"vmload: %d/%d runs ok in %.1fs (%.1f runs/s), latency p50 %.0fus p95 %.0fus p99 %.0fus\n",
		doc.Results.Completed, *runs, doc.Results.WallSecs, doc.Results.RunsPerSec,
		doc.Results.LatencyUs.P50, doc.Results.LatencyUs.P95, doc.Results.LatencyUs.P99)
	if failedErr != nil {
		fmt.Fprintf(os.Stderr, "vmload: FAILED: %v\n", failedErr)
		os.Exit(1)
	}
}

// drive fires total submissions from conc goroutines and assembles the
// latency document. The returned error is non-nil if any run failed.
func drive(base string, spec bench.RunSpec, total, conc int) (*benchDoc, error) {
	client := &http.Client{Timeout: 5 * time.Minute}
	reg := metrics.NewRegistry()
	hist := reg.Histogram("vmload_latency_us", "submit-to-done latency", latencyBoundsUs)

	latencies := make([]float64, total)
	var next, failures atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				lat, err := submitOne(client, base, spec)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("run %d: %w", i, err))
					continue
				}
				latencies[i] = lat
				hist.Observe(lat)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	completed := total - int(failures.Load())
	ok := make([]float64, 0, completed)
	for _, l := range latencies {
		if l > 0 {
			ok = append(ok, l)
		}
	}
	sort.Float64s(ok)

	snap := reg.Snapshot()
	estimate := func(q float64) float64 {
		v, _ := snap.Quantile("vmload_latency_us", q)
		return v
	}
	res := loadResults{
		Completed:  completed,
		Failed:     int(failures.Load()),
		WallSecs:   round3(wall.Seconds()),
		RunsPerSec: round3(float64(completed) / wall.Seconds()),
		LatencyUs: percentiles{
			P50: exactQ(ok, 0.50), P90: exactQ(ok, 0.90),
			P95: exactQ(ok, 0.95), P99: exactQ(ok, 0.99),
		},
		MeanUs: round3(mean(ok)),
		HistEstimateUs: percentiles{
			P50: round3(estimate(0.50)), P90: round3(estimate(0.90)),
			P95: round3(estimate(0.95)), P99: round3(estimate(0.99)),
		},
		BoundsUs: latencyBoundsUs,
	}
	if len(ok) > 0 {
		res.MaxUs = round3(ok[len(ok)-1])
	}
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == "vmload_latency_us" {
			for _, b := range snap.Metrics[i].Buckets {
				res.Counts = append(res.Counts, b.Count)
			}
		}
	}

	doc := &benchDoc{
		Description: fmt.Sprintf(
			"vmprimd serving-plane load test: %d concurrent submitters driving %d %s (d=%d, n=%d, %s) runs end to end (POST /runs through terminal /wait); latencies are wall time in microseconds. Exact percentiles from the full sorted sample; the histogram block is the same distribution in fixed buckets with Prometheus-style interpolated estimates.",
			conc, total, spec.Exp, spec.D, spec.N, spec.Model),
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GoVersion: runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		},
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config:    loadConfig{Runs: total, Concurrency: conc, Spec: spec},
		Results:   res,
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return doc, fmt.Errorf("%d/%d runs failed, first: %w", failures.Load(), total, err)
	}
	return doc, nil
}

// submitOne posts one run and waits for its terminal state, returning
// the wall latency in microseconds.
func submitOne(client *http.Client, base string, spec bench.RunSpec) (float64, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := client.Post(base+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := decodeTo(resp, http.StatusAccepted, &st); err != nil {
		return 0, err
	}
	for {
		resp, err := client.Get(base + "/runs/" + st.ID + "/wait?timeout=60s")
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusAccepted { // wait timeout: poll again
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if err := decodeTo(resp, http.StatusOK, &st); err != nil {
			return 0, err
		}
		break
	}
	if st.State != "done" {
		return 0, fmt.Errorf("run %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return float64(time.Since(start).Microseconds()), nil
}

// decodeTo checks the status and decodes the JSON body, draining and
// closing it either way.
func decodeTo(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// exactQ returns the q-quantile of sorted (nearest-rank), 0 if empty.
func exactQ(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return round3(sorted[i])
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// round3 keeps the JSON readable: microsecond quantities to 3 places.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
