// Command benchdiff compares two benchmark snapshots in the
// BENCH_*.json schema and gates on regressions. It is the repo's
// continuous-benchmark gate: scripts/check.sh and CI run a fresh
// `hostbench -benchtime 1x -json` and diff it against the last
// committed snapshot.
//
// Arguments name a file and optionally a section as file.json:section;
// without a section, "current" is used (or the file's only section).
//
//	go run ./cmd/benchdiff -old BENCH_2.json:current -new fresh.json
//
// Two regimes, matching what the numbers mean:
//
//   - sim_us_per_op is simulated machine time, deterministic by
//     construction: any difference is a correctness regression. It
//     gates (exit 1) unless -gate-sim=false.
//   - ns_per_op is host time, noisy across machines and CI runs: a
//     relative change beyond -host-threshold is reported, and gates
//     only under -gate-host.
//
// Benchmarks present on only one side are reported and gate with
// -gate-sim (a silently dropped benchmark must not pass the sim gate).
//
// Gating never stops at the first mismatch: every comparison runs to
// completion and the run ends with a summary naming each failing
// section and benchmark, so one bad section cannot hide the rest.
//
// Two additional modes serve GOMAXPROCS sweeps:
//
//   - -each-new-section compares the -old section against EVERY
//     section of the -new file in turn — the shape of a fresh
//     `hostbench -sweep` document, proving zero sim drift at every
//     GOMAXPROCS value with one invocation.
//   - -sweep FILE.json validates a committed sweep file on its own:
//     sections named [prefix]gomaxprocs-N are grouped by prefix;
//     within a group the simulated times must be bit-identical across
//     all settings, and host ns/op at the highest setting must not
//     regress beyond -host-threshold versus the lowest (parallelism
//     must never be a slowdown). Both checks gate: a sweep's rows come
//     from one process on one host, so its host ratios are not subject
//     to the cross-machine noise that keeps -gate-host off by default.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"vmprim/internal/bench"
)

func main() {
	oldArg := flag.String("old", "", "baseline snapshot, file.json[:section]")
	newArg := flag.String("new", "", "candidate snapshot, file.json[:section]")
	hostThreshold := flag.Float64("host-threshold", 0.20, "relative ns/op increase reported as a host regression (0.20 = +20%)")
	gateSim := flag.Bool("gate-sim", true, "exit nonzero when simulated times differ (they are deterministic and must not)")
	gateHost := flag.Bool("gate-host", false, "exit nonzero on host regressions too (off by default: host time is noisy in CI)")
	eachNew := flag.Bool("each-new-section", false, "compare -old against every section of the -new file (for hostbench -sweep output)")
	sweepArg := flag.String("sweep", "", "validate a sweep file's [prefix]gomaxprocs-N sections against each other instead of diffing -old/-new")
	flag.Parse()

	if *sweepArg != "" {
		f, err := bench.LoadSnapshotFile(*sweepArg)
		if err != nil {
			fatal(err)
		}
		failures := checkSweep(os.Stdout, f, *sweepArg, *hostThreshold)
		exitWithSummary(os.Stdout, "sweep gate", failures)
		return
	}
	if *oldArg == "" || *newArg == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldRun, oldName, err := loadRun(*oldArg)
	if err != nil {
		fatal(err)
	}

	type candidate struct {
		run  *bench.SnapshotRun
		name string
	}
	var cands []candidate
	if *eachNew {
		f, err := bench.LoadSnapshotFile(*newArg)
		if err != nil {
			fatal(err)
		}
		for _, name := range f.SectionNames() {
			cands = append(cands, candidate{f.Sections[name], *newArg + ":" + name})
		}
		if len(cands) == 0 {
			fatal(fmt.Errorf("%s: no sections", *newArg))
		}
	} else {
		newRun, newName, err := loadRun(*newArg)
		if err != nil {
			fatal(err)
		}
		cands = append(cands, candidate{newRun, newName})
	}

	// Every comparison runs to completion before the exit status is
	// decided, so one bad section cannot hide failures in the sections
	// after it — the summary names every failing section and key.
	var failures []string
	for i, c := range cands {
		if i > 0 {
			fmt.Println()
		}
		failures = append(failures, diffRuns(os.Stdout, oldRun, oldName, c.run, c.name, *hostThreshold, *gateSim, *gateHost)...)
	}
	exitWithSummary(os.Stdout, "gate", failures)
}

// exitWithSummary ends the run: on failures it lists every one and
// exits nonzero, otherwise it reports the gate as passed.
func exitWithSummary(w io.Writer, gate string, failures []string) {
	if len(failures) == 0 {
		fmt.Fprintf(w, "\nbenchdiff: %s passed\n", gate)
		return
	}
	fmt.Fprintf(w, "\nbenchdiff: %s FAILED, %d problem(s):\n", gate, len(failures))
	for _, f := range failures {
		fmt.Fprintf(w, "  %s\n", f)
	}
	os.Exit(1)
}

// diffRuns prints one old-vs-new comparison and returns the gating
// failures, one per failing benchmark key, labelled with the section
// they came from.
func diffRuns(w io.Writer, oldRun *bench.SnapshotRun, oldName string, newRun *bench.SnapshotRun, newName string,
	hostThreshold float64, gateSim, gateHost bool) []string {
	deltas := bench.CompareRuns(oldRun, newRun, hostThreshold)
	fmt.Fprintf(w, "benchdiff: %s  vs  %s\n", oldName, newName)
	if oldRun.Dim != newRun.Dim || oldRun.N != newRun.N {
		fmt.Fprintf(w, "warning: configurations differ (d=%d n=%d vs d=%d n=%d); host ratios are not meaningful\n",
			oldRun.Dim, oldRun.N, newRun.Dim, newRun.N)
	}
	fmt.Fprintf(w, "%-14s %14s %14s %8s   %14s %s\n", "benchmark", "old ns/op", "new ns/op", "host", "sim us/op", "sim")
	for _, d := range deltas {
		switch {
		case d.New == nil:
			fmt.Fprintf(w, "%-14s %14d %14s %8s   %14.1f %s\n", d.Name, d.Old.NsPerOp, "-", "-", d.Old.SimUsPerOp, "MISSING in new")
		case d.Old == nil:
			fmt.Fprintf(w, "%-14s %14s %14d %8s   %14.1f %s\n", d.Name, "-", d.New.NsPerOp, "-", d.New.SimUsPerOp, "new benchmark")
		default:
			host := "n/a"
			if !math.IsNaN(d.HostRatio) {
				host = fmt.Sprintf("%+.1f%%", (d.HostRatio-1)*100)
			}
			sim := "ok"
			if d.SimChanged {
				sim = fmt.Sprintf("CHANGED (%.3f -> %.3f)", d.Old.SimUsPerOp, d.New.SimUsPerOp)
			}
			mark := ""
			if d.HostRegressed {
				mark = "  << host regression"
			}
			fmt.Fprintf(w, "%-14s %14d %14d %8s   %14.1f %s%s\n",
				d.Name, d.Old.NsPerOp, d.New.NsPerOp, host, d.New.SimUsPerOp, sim, mark)
		}
	}

	v := bench.Summarize(deltas)
	var failures []string
	if len(v.SimMismatches) > 0 {
		fmt.Fprintf(w, "\nsimulated time changed for: %s\n", strings.Join(v.SimMismatches, ", "))
		fmt.Fprintln(w, "sim_us_per_op is deterministic; a change means the modelled machine behaves differently.")
		if gateSim {
			for _, name := range v.SimMismatches {
				failures = append(failures, fmt.Sprintf("%s: %s: sim_us_per_op changed", newName, name))
			}
		}
	}
	if len(v.Missing) > 0 {
		fmt.Fprintf(w, "\nbenchmarks on one side only: %s\n", strings.Join(v.Missing, ", "))
		if gateSim {
			for _, name := range v.Missing {
				failures = append(failures, fmt.Sprintf("%s: %s: present on one side only", newName, name))
			}
		}
	}
	if len(v.HostRegressions) > 0 {
		fmt.Fprintf(w, "\nhost regressions beyond %+.0f%%: %s\n", hostThreshold*100, strings.Join(v.HostRegressions, ", "))
		if gateHost {
			for _, name := range v.HostRegressions {
				failures = append(failures, fmt.Sprintf("%s: %s: host regression beyond %+.0f%%", newName, name, hostThreshold*100))
			}
		}
	}
	return failures
}

var sweepSection = regexp.MustCompile(`^(.*)gomaxprocs-(\d+)$`)

// checkSweep validates a sweep file: within every [prefix]gomaxprocs-N
// group, simulated times are bit-identical across all N and host ns/op
// at the highest N stays within threshold of the lowest N. Every group
// is checked even after one fails; the returned slice names each
// failing section and benchmark.
func checkSweep(w io.Writer, f *bench.SnapshotFile, path string, threshold float64) []string {
	type point struct {
		gmp  int
		name string
		run  *bench.SnapshotRun
	}
	var failures []string
	groups := make(map[string][]point)
	for _, name := range f.SectionNames() {
		run := f.Sections[name]
		m := sweepSection.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		gmp, _ := strconv.Atoi(m[2])
		if run.GOMAXPROCS != 0 && run.GOMAXPROCS != gmp {
			fmt.Fprintf(w, "%s: section %s records gomaxprocs %d, name says %d\n", path, name, run.GOMAXPROCS, gmp)
			failures = append(failures, fmt.Sprintf("%s: recorded gomaxprocs %d disagrees with section name", name, run.GOMAXPROCS))
			continue
		}
		groups[m[1]] = append(groups[m[1]], point{gmp, name, run})
	}
	if len(groups) == 0 && len(failures) == 0 {
		fatal(fmt.Errorf("%s: no [prefix]gomaxprocs-N sections", path))
	}

	prefixes := make([]string, 0, len(groups))
	for p := range groups {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)

	for _, prefix := range prefixes {
		pts := groups[prefix]
		sort.Slice(pts, func(i, j int) bool { return pts[i].gmp < pts[j].gmp })
		base := pts[0]
		fmt.Fprintf(w, "sweep %s[%s]: gomaxprocs", path, strings.TrimSuffix(prefix, "-"))
		for _, pt := range pts {
			fmt.Fprintf(w, " %d", pt.gmp)
		}
		fmt.Fprintln(w)

		// Sim drift: every setting against the lowest.
		for _, pt := range pts[1:] {
			for _, d := range bench.CompareRuns(base.run, pt.run, threshold) {
				switch {
				case d.Old == nil || d.New == nil:
					fmt.Fprintf(w, "  %s: benchmark %s missing in %s or %s\n", prefix, d.Name, base.name, pt.name)
					failures = append(failures, fmt.Sprintf("%s: %s: present on one side only vs %s", pt.name, d.Name, base.name))
				case d.SimChanged:
					fmt.Fprintf(w, "  %s/%s: sim_us_per_op differs at gomaxprocs %d vs %d (%.3f -> %.3f)\n",
						prefix, d.Name, base.gmp, pt.gmp, d.Old.SimUsPerOp, d.New.SimUsPerOp)
					failures = append(failures, fmt.Sprintf("%s: %s: sim_us_per_op differs from gomaxprocs %d", pt.name, d.Name, base.gmp))
				}
			}
		}

		// Host slowdown: the gate compares GOMAXPROCS=NumCPU against the
		// lowest setting — parallelism within the physical core count
		// must never be a slowdown. Points beyond NumCPU oversubscribe
		// the host and are reported but not gated (on a 1-core host the
		// gate is vacuous and only the report remains).
		gate := base
		ncpu := 0
		if f.Host != nil {
			ncpu = f.Host.NumCPU
		}
		for _, pt := range pts {
			if pt.gmp > gate.gmp && (ncpu == 0 || pt.gmp <= ncpu) {
				gate = pt
			}
		}
		for _, pt := range pts[1:] {
			gated := pt.gmp == gate.gmp && gate.gmp != base.gmp
			for _, d := range bench.CompareRuns(base.run, pt.run, threshold) {
				if d.Old == nil || d.New == nil {
					continue
				}
				marker := ""
				if d.HostRegressed && gated {
					marker = fmt.Sprintf("  << slower than gomaxprocs %d beyond %+.0f%%", base.gmp, threshold*100)
					failures = append(failures, fmt.Sprintf("%s: %s: slower than gomaxprocs %d beyond %+.0f%%",
						pt.name, d.Name, base.gmp, threshold*100))
				}
				ratio := "n/a"
				if !math.IsNaN(d.HostRatio) {
					ratio = fmt.Sprintf("%.2fx", 1/d.HostRatio)
				}
				note := ""
				if !gated && pt.gmp > ncpu && ncpu > 0 {
					note = "  (beyond num_cpu, not gated)"
				}
				fmt.Fprintf(w, "  %-14s %10d ns/op @%d  %10d ns/op @%d  speedup %s%s%s\n",
					d.Name, d.Old.NsPerOp, base.gmp, d.New.NsPerOp, pt.gmp, ratio, marker, note)
			}
		}
	}
	return failures
}

// loadRun resolves a file.json[:section] argument.
func loadRun(arg string) (*bench.SnapshotRun, string, error) {
	path, section := arg, ""
	if i := strings.LastIndex(arg, ":"); i > 0 && !strings.Contains(arg[i+1:], "/") && strings.Contains(arg[:i], ".json") {
		path, section = arg[:i], arg[i+1:]
	}
	f, err := bench.LoadSnapshotFile(path)
	if err != nil {
		return nil, "", err
	}
	run, err := f.Section(section)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	name := path
	if section != "" {
		name += ":" + section
	} else {
		name += ":current"
	}
	return run, name, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
