// Command benchdiff compares two benchmark snapshots in the
// BENCH_*.json schema and gates on regressions. It is the repo's
// continuous-benchmark gate: scripts/check.sh and CI run a fresh
// `hostbench -benchtime 1x -json` and diff it against the last
// committed snapshot.
//
// Arguments name a file and optionally a section as file.json:section;
// without a section, "current" is used (or the file's only section).
//
//	go run ./cmd/benchdiff -old BENCH_2.json:current -new fresh.json
//
// Two regimes, matching what the numbers mean:
//
//   - sim_us_per_op is simulated machine time, deterministic by
//     construction: any difference is a correctness regression. It
//     gates (exit 1) unless -gate-sim=false.
//   - ns_per_op is host time, noisy across machines and CI runs: a
//     relative change beyond -host-threshold is reported, and gates
//     only under -gate-host.
//
// Benchmarks present on only one side are reported and gate with
// -gate-sim (a silently dropped benchmark must not pass the sim gate).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"vmprim/internal/bench"
)

func main() {
	oldArg := flag.String("old", "", "baseline snapshot, file.json[:section] (required)")
	newArg := flag.String("new", "", "candidate snapshot, file.json[:section] (required)")
	hostThreshold := flag.Float64("host-threshold", 0.20, "relative ns/op increase reported as a host regression (0.20 = +20%)")
	gateSim := flag.Bool("gate-sim", true, "exit nonzero when simulated times differ (they are deterministic and must not)")
	gateHost := flag.Bool("gate-host", false, "exit nonzero on host regressions too (off by default: host time is noisy in CI)")
	flag.Parse()
	if *oldArg == "" || *newArg == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldRun, oldName, err := loadRun(*oldArg)
	if err != nil {
		fatal(err)
	}
	newRun, newName, err := loadRun(*newArg)
	if err != nil {
		fatal(err)
	}

	deltas := bench.CompareRuns(oldRun, newRun, *hostThreshold)
	fmt.Printf("benchdiff: %s  vs  %s\n", oldName, newName)
	if oldRun.Dim != newRun.Dim || oldRun.N != newRun.N {
		fmt.Printf("warning: configurations differ (d=%d n=%d vs d=%d n=%d); host ratios are not meaningful\n",
			oldRun.Dim, oldRun.N, newRun.Dim, newRun.N)
	}
	fmt.Printf("%-14s %14s %14s %8s   %14s %s\n", "benchmark", "old ns/op", "new ns/op", "host", "sim us/op", "sim")
	for _, d := range deltas {
		switch {
		case d.New == nil:
			fmt.Printf("%-14s %14d %14s %8s   %14.1f %s\n", d.Name, d.Old.NsPerOp, "-", "-", d.Old.SimUsPerOp, "MISSING in new")
		case d.Old == nil:
			fmt.Printf("%-14s %14s %14d %8s   %14.1f %s\n", d.Name, "-", d.New.NsPerOp, "-", d.New.SimUsPerOp, "new benchmark")
		default:
			host := "n/a"
			if !math.IsNaN(d.HostRatio) {
				host = fmt.Sprintf("%+.1f%%", (d.HostRatio-1)*100)
			}
			sim := "ok"
			if d.SimChanged {
				sim = fmt.Sprintf("CHANGED (%.3f -> %.3f)", d.Old.SimUsPerOp, d.New.SimUsPerOp)
			}
			mark := ""
			if d.HostRegressed {
				mark = "  << host regression"
			}
			fmt.Printf("%-14s %14d %14d %8s   %14.1f %s%s\n",
				d.Name, d.Old.NsPerOp, d.New.NsPerOp, host, d.New.SimUsPerOp, sim, mark)
		}
	}

	v := bench.Summarize(deltas)
	failed := false
	if len(v.SimMismatches) > 0 {
		fmt.Printf("\nsimulated time changed for: %s\n", strings.Join(v.SimMismatches, ", "))
		fmt.Println("sim_us_per_op is deterministic; a change means the modelled machine behaves differently.")
		failed = failed || *gateSim
	}
	if len(v.Missing) > 0 {
		fmt.Printf("\nbenchmarks on one side only: %s\n", strings.Join(v.Missing, ", "))
		failed = failed || *gateSim
	}
	if len(v.HostRegressions) > 0 {
		fmt.Printf("\nhost regressions beyond %+.0f%%: %s\n", *hostThreshold*100, strings.Join(v.HostRegressions, ", "))
		failed = failed || *gateHost
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: gate passed")
}

// loadRun resolves a file.json[:section] argument.
func loadRun(arg string) (*bench.SnapshotRun, string, error) {
	path, section := arg, ""
	if i := strings.LastIndex(arg, ":"); i > 0 && !strings.Contains(arg[i+1:], "/") && strings.Contains(arg[:i], ".json") {
		path, section = arg[:i], arg[i+1:]
	}
	f, err := bench.LoadSnapshotFile(path)
	if err != nil {
		return nil, "", err
	}
	run, err := f.Section(section)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	name := path
	if section != "" {
		name += ":" + section
	} else {
		name += ":current"
	}
	return run, name, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
