package main

import (
	"reflect"
	"strings"
	"testing"

	"vmprim/internal/bench"
)

func result(name string, ns int64, sim float64) bench.SnapshotResult {
	return bench.SnapshotResult{Name: name, NsPerOp: ns, SimUsPerOp: sim, Iterations: 1}
}

func snapshotRun(gmp int, results ...bench.SnapshotResult) *bench.SnapshotRun {
	return &bench.SnapshotRun{Dim: 4, N: 64, Benchtime: "1x", GOMAXPROCS: gmp, Results: results}
}

// diffRuns must walk every benchmark and name each failing key — one
// early mismatch cannot hide the rest.
func TestDiffRunsReportsEveryFailure(t *testing.T) {
	oldRun := snapshotRun(0,
		result("E1", 100, 10),
		result("E2", 100, 20),
		result("E3", 100, 30),
		result("E4", 100, 40),
	)
	newRun := snapshotRun(0,
		result("E1", 100, 11), // sim drift
		// E2 missing entirely
		result("E3", 500, 30), // host regression
		result("E4", 100, 41), // second sim drift, after the other failures
	)
	var buf strings.Builder
	failures := diffRuns(&buf, oldRun, "old.json:gate", newRun, "new.json:current", 0.20, true, true)
	for _, want := range []string{
		"new.json:current: E1: sim_us_per_op changed",
		"new.json:current: E4: sim_us_per_op changed",
		"new.json:current: E2: present on one side only",
		"new.json:current: E3: host regression beyond +20%",
	} {
		found := false
		for _, f := range failures {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("failures missing %q: %v", want, failures)
		}
	}
	if len(failures) != 4 {
		t.Errorf("got %d failures, want 4: %v", len(failures), failures)
	}
	out := buf.String()
	for _, want := range []string{"CHANGED", "MISSING in new", "host regression"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// With the host gate off, a host regression is reported in the text
// but does not fail the run.
func TestDiffRunsHostGateOff(t *testing.T) {
	oldRun := snapshotRun(0, result("E1", 100, 10))
	newRun := snapshotRun(0, result("E1", 500, 10))
	var buf strings.Builder
	failures := diffRuns(&buf, oldRun, "old", newRun, "new", 0.20, true, false)
	if len(failures) != 0 {
		t.Errorf("host regression gated with -gate-host=false: %v", failures)
	}
	if !strings.Contains(buf.String(), "host regression") {
		t.Error("host regression not reported in text")
	}
}

// checkSweep must keep validating after a failure: every group and
// every bad section shows up in the failure list, in deterministic
// order.
func TestCheckSweepReportsAllGroupsAndKeys(t *testing.T) {
	f := &bench.SnapshotFile{
		Host: &bench.HostInfo{NumCPU: 4},
		Sections: map[string]*bench.SnapshotRun{
			"d4-gomaxprocs-1": snapshotRun(1, result("E1", 100, 10)),
			"d4-gomaxprocs-4": snapshotRun(4, result("E1", 500, 11)), // sim drift + gated host slowdown
			"d8-gomaxprocs-1": snapshotRun(1, result("E2", 100, 20)),
			"d8-gomaxprocs-4": snapshotRun(4, result("E2", 100, 21)), // drift in the second group too
			"bad-gomaxprocs-2": {
				Dim: 4, N: 64, GOMAXPROCS: 8, // label disagrees with recorded value
				Results: []bench.SnapshotResult{result("E1", 100, 10)},
			},
		},
	}
	var buf strings.Builder
	failures := checkSweep(&buf, f, "sweep.json", 0.20)
	for _, want := range []string{
		"bad-gomaxprocs-2: recorded gomaxprocs 8 disagrees with section name",
		"d4-gomaxprocs-4: E1: sim_us_per_op differs from gomaxprocs 1",
		"d4-gomaxprocs-4: E1: slower than gomaxprocs 1 beyond +20%",
		"d8-gomaxprocs-4: E2: sim_us_per_op differs from gomaxprocs 1",
	} {
		found := false
		for _, f := range failures {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("failures missing %q: %v", want, failures)
		}
	}

	// Section iteration is sorted, so a second pass produces the same
	// failures in the same order.
	var buf2 strings.Builder
	again := checkSweep(&buf2, f, "sweep.json", 0.20)
	if !reflect.DeepEqual(failures, again) {
		t.Errorf("failure order not deterministic:\n%v\n%v", failures, again)
	}
	if buf.String() != buf2.String() {
		t.Error("report text not deterministic across runs")
	}
}

// A clean sweep returns no failures.
func TestCheckSweepClean(t *testing.T) {
	f := &bench.SnapshotFile{
		Host: &bench.HostInfo{NumCPU: 4},
		Sections: map[string]*bench.SnapshotRun{
			"gomaxprocs-1": snapshotRun(1, result("E1", 100, 10)),
			"gomaxprocs-4": snapshotRun(4, result("E1", 90, 10)),
		},
	}
	var buf strings.Builder
	if failures := checkSweep(&buf, f, "sweep.json", 0.20); len(failures) != 0 {
		t.Errorf("clean sweep failed: %v", failures)
	}
}
