// Command hostbench measures host-side performance of the vector-matrix
// primitives: wall nanoseconds and heap allocations per operation, next
// to the simulated machine time (which is deterministic and must not
// change when host performance does). It exists to track the engine's
// own overhead — goroutine scheduling, message buffering, kernel
// dispatch — across revisions; see EXPERIMENTS.md for the methodology
// and BENCH_1.json for recorded snapshots.
//
// Usage:
//
//	go run ./cmd/hostbench -d 8 -n 512 -benchtime 2s -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimUsPerOp  float64 `json:"sim_us_per_op"`
	Iterations  int     `json:"iterations"`
	// Sim holds the per-processor mean virtual-time buckets of the
	// last run, present only under -profile (which also makes the
	// ns/op column measure the profiler's own host overhead).
	Sim *simBuckets `json:"sim_buckets,omitempty"`
}

type simBuckets struct {
	ComputeUs  float64 `json:"compute_us"`
	StartupUs  float64 `json:"startup_us"`
	TransferUs float64 `json:"transfer_us"`
	IdleUs     float64 `json:"idle_us"`
}

type report struct {
	Label      string   `json:"label,omitempty"`
	Dim        int      `json:"dim"`
	N          int      `json:"n"`
	Benchtime  string   `json:"benchtime"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Timestamp  string   `json:"timestamp"`
	Results    []result `json:"results"`
}

func main() {
	dim := flag.Int("d", 8, "cube dimension (2^d processors)")
	n := flag.Int("n", 512, "matrix order")
	benchtime := flag.String("benchtime", "2s", "per-benchmark measuring time (testing -benchtime syntax)")
	out := flag.String("o", "", "output JSON path (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	prof := flag.Bool("profile", false, "run with the virtual-time profiler on and record sim bucket splits (also measures profiler host overhead)")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}

	m, err := hypercube.New(*dim, costmodel.CM2())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}
	defer m.Close()
	if *prof {
		m.EnableProfile(true)
	}
	g := embed.SplitFor(*dim, *n, *n)
	a, err := core.FromDense(g, bench.RandMat(1, *n, *n), embed.Block, embed.Block)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}

	// The same primitive bodies as the BenchmarkPrimitive* benchmarks
	// at the repository root, so numbers are comparable either way.
	prims := []struct {
		name string
		body func(e *core.Env, a *core.Matrix)
	}{
		{"ExtractRow", func(e *core.Env, a *core.Matrix) { e.ExtractRow(a, a.Rows/2, true) }},
		{"InsertRow", func(e *core.Env, a *core.Matrix) {
			v := e.ExtractRow(a, 0, false)
			e.InsertRow(a, v, a.Rows/2)
		}},
		{"Distribute", func(e *core.Env, a *core.Matrix) {
			v := e.ExtractRow(a, 0, false)
			e.Distribute(v)
		}},
		{"ReduceRows", func(e *core.Env, a *core.Matrix) { e.ReduceRows(a, core.OpSum, true) }},
		{"ReduceColLoc", func(e *core.Env, a *core.Matrix) {
			e.ReduceColLoc(a, a.Cols/2, 0, a.Rows, core.LocMaxAbs)
		}},
		{"Transpose", func(e *core.Env, a *core.Matrix) { e.Transpose(a) }},
	}

	rep := report{
		Label:      *label,
		Dim:        *dim,
		N:          *n,
		Benchtime:  *benchtime,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, pr := range prims {
		body := pr.body
		var sim costmodel.Time
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				elapsed, err := m.Run(func(p *hypercube.Proc) {
					body(core.NewEnv(p, g), a)
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = elapsed
			}
		})
		r := result{
			Name:        pr.name,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			SimUsPerOp:  float64(sim),
			Iterations:  br.N,
		}
		if *prof {
			if pf := m.Profile(); pf != nil {
				inv := 1 / float64(pf.P)
				b := pf.Root.Buckets
				r.Sim = &simBuckets{
					ComputeUs:  float64(b.Compute) * inv,
					StartupUs:  float64(b.Startup) * inv,
					TransferUs: float64(b.Transfer) * inv,
					IdleUs:     float64(b.Idle) * inv,
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%-14s %10d ns/op %8d allocs/op %10d B/op %12.1f sim-us/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.SimUsPerOp)
		rep.Results = append(rep.Results, r)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}
}
