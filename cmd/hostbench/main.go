// Command hostbench measures host-side performance of the vector-matrix
// primitives: wall nanoseconds and heap allocations per operation, next
// to the simulated machine time (which is deterministic and must not
// change when host performance does). It exists to track the engine's
// own overhead — goroutine scheduling, message buffering, kernel
// dispatch — across revisions; see EXPERIMENTS.md for the methodology
// and BENCH_*.json for recorded snapshots.
//
// Usage:
//
//	go run ./cmd/hostbench -d 8 -n 512 -benchtime 2s -o out.json
//
// With -json the output is a complete BENCH_*.json-schema document (a
// host block plus a single "current" section), directly comparable
// with the committed snapshots via cmd/benchdiff; without it the bare
// section object is emitted, as earlier revisions did.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

func main() {
	dim := flag.Int("d", 8, "cube dimension (2^d processors)")
	n := flag.Int("n", 512, "matrix order")
	benchtime := flag.String("benchtime", "2s", "per-benchmark measuring time (testing -benchtime syntax)")
	out := flag.String("o", "", "output JSON path (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	prof := flag.Bool("profile", false, "run with the virtual-time profiler on and record sim bucket splits (also measures profiler host overhead)")
	asFile := flag.Bool("json", false, "emit a full BENCH_*.json-schema document (host block + \"current\" section) instead of the bare section")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}

	m, err := hypercube.New(*dim, costmodel.CM2())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}
	defer m.Close()
	if *prof {
		m.EnableProfile(true)
	}
	g := embed.SplitFor(*dim, *n, *n)
	a, err := core.FromDense(g, bench.RandMat(1, *n, *n), embed.Block, embed.Block)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}

	// The same primitive bodies as the BenchmarkPrimitive* benchmarks
	// at the repository root, so numbers are comparable either way.
	prims := []struct {
		name string
		body func(e *core.Env, a *core.Matrix)
	}{
		{"ExtractRow", func(e *core.Env, a *core.Matrix) { e.ExtractRow(a, a.Rows/2, true) }},
		{"InsertRow", func(e *core.Env, a *core.Matrix) {
			v := e.ExtractRow(a, 0, false)
			e.InsertRow(a, v, a.Rows/2)
		}},
		{"Distribute", func(e *core.Env, a *core.Matrix) {
			v := e.ExtractRow(a, 0, false)
			e.Distribute(v)
		}},
		{"ReduceRows", func(e *core.Env, a *core.Matrix) { e.ReduceRows(a, core.OpSum, true) }},
		{"ReduceColLoc", func(e *core.Env, a *core.Matrix) {
			e.ReduceColLoc(a, a.Cols/2, 0, a.Rows, core.LocMaxAbs)
		}},
		{"Transpose", func(e *core.Env, a *core.Matrix) { e.Transpose(a) }},
	}

	run := bench.SnapshotRun{
		Label:      *label,
		Dim:        *dim,
		N:          *n,
		Benchtime:  *benchtime,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, pr := range prims {
		body := pr.body
		var sim costmodel.Time
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				elapsed, err := m.Run(func(p *hypercube.Proc) {
					body(core.NewEnv(p, g), a)
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = elapsed
			}
		})
		r := bench.SnapshotResult{
			Name:        pr.name,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			SimUsPerOp:  float64(sim),
			Iterations:  br.N,
		}
		if *prof {
			if pf := m.Profile(); pf != nil {
				inv := 1 / float64(pf.P)
				b := pf.Root.Buckets
				r.Sim = &bench.SimBuckets{
					ComputeUs:  float64(b.Compute) * inv,
					StartupUs:  float64(b.Startup) * inv,
					TransferUs: float64(b.Transfer) * inv,
					IdleUs:     float64(b.Idle) * inv,
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%-14s %10d ns/op %8d allocs/op %10d B/op %12.1f sim-us/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.SimUsPerOp)
		run.Results = append(run.Results, r)
	}

	var doc any = &run
	if *asFile {
		doc = &bench.SnapshotFile{
			Host: &bench.HostInfo{
				GOOS:       runtime.GOOS,
				GOARCH:     runtime.GOARCH,
				GoVersion:  runtime.Version(),
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			},
			Sections: map[string]*bench.SnapshotRun{"current": &run},
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}
}
