// Command hostbench measures host-side performance of the vector-matrix
// primitives: wall nanoseconds and heap allocations per operation, next
// to the simulated machine time (which is deterministic and must not
// change when host performance does). It exists to track the engine's
// own overhead — goroutine scheduling, message buffering, kernel
// dispatch — across revisions; see EXPERIMENTS.md for the methodology
// and BENCH_*.json for recorded snapshots.
//
// Usage:
//
//	go run ./cmd/hostbench -d 8 -n 512 -benchtime 2s -o out.json
//
// With -json the output is a complete BENCH_*.json-schema document (a
// host block plus a single "current" section), directly comparable
// with the committed snapshots via cmd/benchdiff; without it the bare
// section object is emitted, as earlier revisions did.
//
// With -sweep the same benchmarks run once per GOMAXPROCS setting
// ("1,2,4,ncpu"; "ncpu" resolves to runtime.NumCPU, duplicates are
// dropped) and each setting becomes its own section named
// [prefix]gomaxprocs-N whose gomaxprocs field records the value
// actually in effect — the schema BENCH_3.json is built from. The
// simulated times must be bit-identical across the sweep; only the
// host columns may move.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

// prims are the measured bodies — the same primitive workloads as the
// BenchmarkPrimitive* benchmarks at the repository root, so numbers
// are comparable either way.
var prims = []struct {
	name string
	body func(e *core.Env, a *core.Matrix)
}{
	{"ExtractRow", func(e *core.Env, a *core.Matrix) { e.ExtractRow(a, a.Rows/2, true) }},
	{"InsertRow", func(e *core.Env, a *core.Matrix) {
		v := e.ExtractRow(a, 0, false)
		e.InsertRow(a, v, a.Rows/2)
	}},
	{"Distribute", func(e *core.Env, a *core.Matrix) {
		v := e.ExtractRow(a, 0, false)
		e.Distribute(v)
	}},
	{"ReduceRows", func(e *core.Env, a *core.Matrix) { e.ReduceRows(a, core.OpSum, true) }},
	{"ReduceColLoc", func(e *core.Env, a *core.Matrix) {
		e.ReduceColLoc(a, a.Cols/2, 0, a.Rows, core.LocMaxAbs)
	}},
	{"Transpose", func(e *core.Env, a *core.Matrix) { e.Transpose(a) }},
}

func main() {
	dim := flag.Int("d", 8, "cube dimension (2^d processors)")
	n := flag.Int("n", 512, "matrix order")
	benchtime := flag.String("benchtime", "2s", "per-benchmark measuring time (testing -benchtime syntax)")
	out := flag.String("o", "", "output JSON path (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	prof := flag.Bool("profile", false, "run with the virtual-time profiler on and record sim bucket splits (also measures profiler host overhead)")
	asFile := flag.Bool("json", false, "emit a full BENCH_*.json-schema document (host block + \"current\" section) instead of the bare section")
	sweep := flag.String("sweep", "", "comma-separated GOMAXPROCS values to sweep (e.g. \"1,2,4,ncpu\"); one section per value, implies -json")
	prefix := flag.String("section-prefix", "", "prefix for sweep section names (e.g. \"d8-\" gives d8-gomaxprocs-N)")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatal(err)
	}

	m, err := hypercube.New(*dim, costmodel.CM2())
	if err != nil {
		fatal(err)
	}
	defer m.Close()
	if *prof {
		m.EnableProfile(true)
	}
	g := embed.SplitFor(*dim, *n, *n)
	a, err := core.FromDense(g, bench.RandMat(1, *n, *n), embed.Block, embed.Block)
	if err != nil {
		fatal(err)
	}

	section := func(gomaxprocs int) *bench.SnapshotRun {
		run := &bench.SnapshotRun{
			Label:      *label,
			Dim:        *dim,
			N:          *n,
			Benchtime:  *benchtime,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: gomaxprocs,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
		}
		for _, pr := range prims {
			run.Results = append(run.Results, measure(m, g, a, pr.name, pr.body, *prof))
		}
		return run
	}

	host := &bench.HostInfo{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	var doc any
	if *sweep != "" {
		points, err := parseSweep(*sweep)
		if err != nil {
			fatal(err)
		}
		prev := runtime.GOMAXPROCS(0)
		sections := make(map[string]*bench.SnapshotRun, len(points))
		for _, gmp := range points {
			runtime.GOMAXPROCS(gmp)
			fmt.Fprintf(os.Stderr, "--- gomaxprocs %d\n", gmp)
			sections[fmt.Sprintf("%sgomaxprocs-%d", *prefix, gmp)] = section(gmp)
		}
		runtime.GOMAXPROCS(prev)
		doc = &bench.SnapshotFile{Host: host, Sections: sections}
	} else {
		run := section(runtime.GOMAXPROCS(0))
		if *asFile {
			doc = &bench.SnapshotFile{Host: host, Sections: map[string]*bench.SnapshotRun{"current": run}}
		} else {
			doc = run
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// measure runs one primitive benchmark on the machine and assembles its
// snapshot row.
func measure(m *hypercube.Machine, g embed.Grid, a *core.Matrix,
	name string, body func(e *core.Env, a *core.Matrix), prof bool) bench.SnapshotResult {
	var sim costmodel.Time
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			elapsed, err := m.Run(func(p *hypercube.Proc) {
				body(core.NewEnv(p, g), a)
			})
			if err != nil {
				b.Fatal(err)
			}
			sim = elapsed
		}
	})
	r := bench.SnapshotResult{
		Name:        name,
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		SimUsPerOp:  float64(sim),
		Iterations:  br.N,
	}
	if prof {
		if pf := m.Profile(); pf != nil {
			inv := 1 / float64(pf.P)
			b := pf.Root.Buckets
			r.Sim = &bench.SimBuckets{
				ComputeUs:  float64(b.Compute) * inv,
				StartupUs:  float64(b.Startup) * inv,
				TransferUs: float64(b.Transfer) * inv,
				IdleUs:     float64(b.Idle) * inv,
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%-14s %10d ns/op %8d allocs/op %10d B/op %12.1f sim-us/op\n",
		r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.SimUsPerOp)
	return r
}

// parseSweep resolves a "1,2,4,ncpu" sweep spec into distinct
// GOMAXPROCS values in the order first seen ("ncpu" =
// runtime.NumCPU(), so on small hosts it may collapse into an earlier
// point).
func parseSweep(spec string) ([]int, error) {
	var points []int
	seen := make(map[int]bool)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		v := 0
		if strings.EqualFold(field, "ncpu") {
			v = runtime.NumCPU()
		} else {
			n, err := strconv.Atoi(field)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -sweep value %q (want a positive integer or \"ncpu\")", field)
			}
			v = n
		}
		if !seen[v] {
			seen[v] = true
			points = append(points, v)
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("empty -sweep spec")
	}
	return points, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hostbench:", err)
	os.Exit(1)
}
