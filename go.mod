module vmprim

go 1.23
