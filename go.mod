module vmprim

go 1.22
