package vmprim_test

// Godoc examples: runnable documentation for the public API, verified
// by go test against their expected output (the simulator is
// deterministic, so simulated times are stable too).

import (
	"fmt"

	"vmprim"
)

// ExampleEnv_ReduceRows demonstrates the Reduce primitive: column sums
// of a distributed matrix.
func ExampleEnv_ReduceRows() {
	m := vmprim.NewMachine(2, vmprim.CM2()) // 4 processors
	g := vmprim.SplitFor(m.Dim(), 4, 4)
	dm := vmprim.DenseFromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	})
	a, _ := vmprim.FromDense(g, dm, vmprim.Block, vmprim.Block)
	sums, _ := vmprim.NewVector(g, 4, vmprim.RowAligned, vmprim.Block, 0, true)
	m.Run(func(p *vmprim.Proc) {
		e := vmprim.NewEnv(p, g)
		e.StoreVec(sums, e.ReduceRows(a, vmprim.OpSum, true))
	})
	fmt.Println(sums.ToSlice())
	// Output: [28 32 36 40]
}

// ExampleEnv_ExtractRow demonstrates Extract with replication: every
// processor receives a copy of the row.
func ExampleEnv_ExtractRow() {
	m := vmprim.NewMachine(2, vmprim.CM2())
	g := vmprim.SplitFor(m.Dim(), 4, 4)
	dm := vmprim.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dm.Set(i, j, float64(10*i+j))
		}
	}
	a, _ := vmprim.FromDense(g, dm, vmprim.Block, vmprim.Block)
	row, _ := vmprim.NewVector(g, 4, vmprim.RowAligned, vmprim.Block, a.RMap.CoordOf(2), true)
	m.Run(func(p *vmprim.Proc) {
		e := vmprim.NewEnv(p, g)
		e.StoreVec(row, e.ExtractRow(a, 2, true))
	})
	fmt.Println(row.ToSlice())
	// Output: [20 21 22 23]
}

// ExampleSolveGauss solves a small linear system with the distributed
// Gaussian elimination of the paper.
func ExampleSolveGauss() {
	m := vmprim.NewMachine(2, vmprim.CM2())
	a := vmprim.DenseFromRows([][]float64{{2, 1}, {1, 3}})
	x, _, _ := vmprim.SolveGauss(m, a, []float64{5, 10}, vmprim.DefaultGaussOpts())
	fmt.Printf("%.0f %.0f\n", x[0], x[1])
	// Output: 1 3
}

// ExampleSolveSimplex maximizes a small LP with the distributed
// simplex algorithm.
func ExampleSolveSimplex() {
	m := vmprim.NewMachine(2, vmprim.CM2())
	a := vmprim.DenseFromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	res, _, _ := vmprim.SolveSimplex(m, []float64{3, 5}, a, []float64{4, 12, 18}, vmprim.DefaultSimplexOpts())
	fmt.Printf("%v z=%.0f x=[%.0f %.0f]\n", res.Status, res.Z, res.X[0], res.X[1])
	// Output: optimal z=36 x=[2 6]
}

// ExampleRunVecMat compares the three vector-matrix multiply variants'
// answers (they always agree; their simulated costs differ).
func ExampleRunVecMat() {
	m := vmprim.NewMachine(3, vmprim.CM2())
	a := vmprim.DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, 1, 1}
	for _, v := range []vmprim.MatvecVariant{vmprim.MatvecPrimitive, vmprim.MatvecFused, vmprim.MatvecNaive} {
		y, _, _, _ := vmprim.RunVecMat(m, a, x, v)
		fmt.Printf("%s: [%.0f %.0f]\n", v, y[0], y[1])
	}
	// Output:
	// primitive: [9 12]
	// fused: [9 12]
	// naive: [9 12]
}

// ExampleLUFactor factors once and solves two right-hand sides.
func ExampleLUFactor() {
	m := vmprim.NewMachine(2, vmprim.CM2())
	a := vmprim.DenseFromRows([][]float64{{4, 1}, {1, 3}})
	lu, _ := vmprim.LUFactor(m, a, vmprim.DefaultGaussOpts())
	x1, _, _ := lu.Solve([]float64{5, 4})
	x2, _, _ := lu.Solve([]float64{14, 9})
	fmt.Printf("[%.0f %.0f] [%.0f %.0f]\n", x1[0], x1[1], x2[0], x2[1])
	// Output: [1 1] [3 2]
}

// ExampleSolveTridiag solves a diagonally dominant tridiagonal system
// by distributed cyclic reduction.
func ExampleSolveTridiag() {
	m := vmprim.NewMachine(3, vmprim.CM2())
	n := 5
	a := []float64{0, -1, -1, -1, -1}
	b := []float64{2, 2, 2, 2, 2}
	c := []float64{-1, -1, -1, -1, 0}
	d := make([]float64, n)
	d[0], d[n-1] = 1, 1
	x, _, _ := vmprim.SolveTridiag(m, a, b, c, d)
	for _, v := range x {
		fmt.Printf("%.0f ", v)
	}
	fmt.Println()
	// Output: 1 1 1 1 1
}
