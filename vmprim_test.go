package vmprim

import (
	"math"
	"testing"
)

// The facade tests exercise the library exactly as a downstream user
// would: single import, host-created containers, SPMD bodies.

func TestFacadeQuickstartFlow(t *testing.T) {
	m := NewMachine(4, CM2())
	g := SplitFor(m.Dim(), 8, 8)
	dm := NewDense(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			dm.Set(i, j, float64(i*8+j))
		}
	}
	a, err := FromDense(g, dm, Block, Block)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := NewVector(g, 8, RowAligned, Block, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {
		e := NewEnv(p, g)
		e.StoreVec(sums, e.ReduceRows(a, OpSum, true))
	}); err != nil {
		t.Fatal(err)
	}
	got := sums.ToSlice()
	for j := 0; j < 8; j++ {
		want := 0.0
		for i := 0; i < 8; i++ {
			want += float64(i*8 + j)
		}
		if got[j] != want {
			t.Fatalf("column %d sum = %v, want %v", j, got[j], want)
		}
	}
	if m.Elapsed() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestFacadeGauss(t *testing.T) {
	m := NewMachine(3, CM2())
	a := DenseFromRows([][]float64{{4, 1, 0}, {1, 5, 2}, {0, 2, 6}})
	b := []float64{5, 8, 8}
	x, elapsed, err := SolveGauss(m, a, b, DefaultGaussOpts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := SerialGaussSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if elapsed <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestFacadeSimplex(t *testing.T) {
	m := NewMachine(3, CM2())
	a := DenseFromRows([][]float64{{6, 4}, {1, 2}})
	res, _, err := SolveSimplex(m, []float64{5, 4}, a, []float64{24, 6}, DefaultSimplexOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Z-21) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
	serialRes, err := SerialSolveLP([]float64{5, 4}, a, []float64{24, 6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != serialRes.Iterations {
		t.Fatalf("iterations %d, serial %d", res.Iterations, serialRes.Iterations)
	}
}

func TestFacadeMatvecVariantsAgree(t *testing.T) {
	m := NewMachine(4, CM2())
	a := NewDense(6, 10)
	for i := range a.A {
		a.A[i] = float64(i%7) - 3
	}
	x := []float64{1, -1, 2, 0.5, -0.25, 3}
	want := SerialVecMatMul(x, a)
	for _, v := range []MatvecVariant{MatvecPrimitive, MatvecFused, MatvecNaive} {
		y, _, _, err := RunVecMat(m, a, x, v)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(y[j]-want[j]) > 1e-10 {
				t.Fatalf("%v: y[%d] = %v, want %v", v, j, y[j], want[j])
			}
		}
	}
}

func TestFacadeKernelComposition(t *testing.T) {
	// Use VecMatKernel inside a caller-owned SPMD body, composing with
	// a primitive afterwards: y = x*A, then the max element of y.
	m := NewMachine(4, CM2())
	g := SplitFor(m.Dim(), 8, 8)
	dm := NewDense(8, 8)
	for i := range dm.A {
		dm.A[i] = float64(i % 5)
	}
	a, err := FromDense(g, dm, Block, Block)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = 1
	}
	xv, err := VectorFromSlice(g, x, ColAligned, Block, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var maxY float64
	if _, err := m.Run(func(p *Proc) {
		e := NewEnv(p, g)
		y := VecMatKernel(e, a, xv, MatvecFused)
		v := e.ReduceVec(y, OpMax)
		if p.ID() == 0 {
			maxY = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := math.Inf(-1)
	for _, v := range SerialVecMatMul(x, dm) {
		want = math.Max(want, v)
	}
	if maxY != want {
		t.Fatalf("max y = %v, want %v", maxY, want)
	}
}

func TestFacadeParamsPresets(t *testing.T) {
	for _, p := range []Params{CM2(), IPSC(), Ideal()} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeGridHelpers(t *testing.T) {
	g, err := NewGrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.PRows() != 4 || g.PCols() != 8 {
		t.Fatalf("grid %+v", g)
	}
	if SplitFor(6, 100, 100).D != 6 {
		t.Fatal("SplitFor dimension")
	}
}
