#!/bin/sh
# Pre-PR gate: formatting, module hygiene, vet, the vmlint static
# analyzers, build, full tests under the race detector (which also
# exercises the steady-state allocation guards in internal/hypercube
# and internal/core). Run from the repository root:
#
#	./scripts/check.sh
#
# Simulated results are deterministic, so any table change this script
# surfaces is a real behavioral change, not noise.
#
# Set CHECK_ARTIFACT_DIR to keep the produced artifacts (profile and
# trace JSON, the demo post-mortem, metrics, the fresh benchmark
# snapshot) instead of discarding them — CI uses this to upload them
# on failure.
set -eu

cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

# The module is dependency-free and must stay that way: tidy may not
# want to change go.mod.
if ! go mod tidy -diff >/dev/null 2>&1; then
	echo "go mod tidy would change go.mod/go.sum; run it and commit" >&2
	go mod tidy -diff >&2 || true
	exit 1
fi

go vet ./...
go build ./...

# Static allocation gate: the compiler's escape analysis must not
# report new heap escapes in the hot-path packages (hypercube,
# collective, core, flightrec) relative to the committed baseline.
# The dynamic AllocsPerRun guards only see the paths the benchmarks
# drive; this sees every function the compiler does.
./scripts/allocgate.sh

# vmlint: the repo's own analyzers (SPMD symmetry, span balance,
# buffer ownership, determinism). Build the tool once, then lint
# before spending time on tests — a lint finding is file:line:col
# actionable, a deadlocked test run is a 30s watchdog timeout.
vmlint_bin=$(mktemp)
go build -o "$vmlint_bin" ./cmd/vmlint
"$vmlint_bin" ./... || { rm -f "$vmlint_bin"; echo "vmlint failed" >&2; exit 1; }
# -diff must print nothing: a pending suggested fix is uncommitted
# mechanical work — run vmlint -fix and commit the result.
fixes=$("$vmlint_bin" -diff ./...) || { rm -f "$vmlint_bin"; echo "vmlint -diff failed" >&2; exit 1; }
if [ -n "$fixes" ]; then
	echo "vmlint -diff: pending suggested fixes; run vmlint -fix and commit:" >&2
	echo "$fixes" >&2
	rm -f "$vmlint_bin"
	exit 1
fi
# The same suite through the go vet driver: exercises the -vettool
# unit-checker protocol, with package facts (identity taint, buffer
# sinks, collective summaries) crossing packages through vetx files.
go vet -vettool="$vmlint_bin" ./... || { rm -f "$vmlint_bin"; echo "vmlint (vettool) failed" >&2; exit 1; }
rm -f "$vmlint_bin"

go test ./...
# Full internal tree under the race detector. This includes the
# GOMAXPROCS determinism stress (internal/bench TestGOMAXPROCSDeterminism
# plus the collective and router variants): the same E1–E5 workloads at
# GOMAXPROCS 1, 2 and NumCPU must produce bit-identical clocks, link
# loads, metrics folds and profile documents, with the race detector
# watching the host-parallel engine the whole time.
go test -race ./internal/...
# The profiler invariant tests (bit-identity, bucket reconciliation)
# under the race detector: the span recorder runs on every processor
# goroutine, so races here would be real simulator bugs.
go test -race -run 'Profile|Span|Congestion|LinkVolumes' ./internal/hypercube/ ./internal/obs/
# Host-concurrency race gate: the serving plane (SSE broadcaster,
# run registry, worker pool), the metrics registry and the vmload
# harness are the packages the hostconc analyzers police statically;
# this runs their goroutine-dense tests — including the SSE
# subscribe/unsubscribe churn — with the race detector watching the
# same code dynamically. (./internal/... above already covers serve
# and metrics; this line pins the contract and adds cmd/vmload.)
go test -race ./internal/serve/ ./internal/metrics/ ./cmd/vmload/

# End-to-end profiled run: the JSON profile on stdout must parse, and
# the Chrome trace written next to it must parse, or the exporters
# regressed.
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
	mkdir -p "$CHECK_ARTIFACT_DIR"
	tmpdir=$CHECK_ARTIFACT_DIR
else
	tmpdir=$(mktemp -d)
	trap 'rm -rf "$tmpdir"' EXIT
fi
go run ./cmd/vmprim -profile E1 -json -trace-out "$tmpdir/trace.json" >"$tmpdir/profile.json"
python3 - "$tmpdir/profile.json" "$tmpdir/trace.json" <<'PYEOF'
import json, sys
prof = json.load(open(sys.argv[1]))
root = prof["spans"]
assert prof["p"] > 0 and root["name"] == "run" and root.get("children"), \
    "profile JSON missing span tree"
assert prof["bucket_skew_us"] == 0, "bucket reconciliation skew nonzero"
trace = json.load(open(sys.argv[2]))
assert trace["traceEvents"], "Chrome trace empty"
print("profiled run: %d procs, %d top-level spans, %d trace events" %
      (prof["p"], len(root["children"]), len(trace["traceEvents"])))
PYEOF

# End-to-end post-mortem: a deliberately deadlocked run must produce a
# structured report that names every processor's blocked receive, and
# the metrics snapshot must record the failed run. The command itself
# exits nonzero unless the report shows all procs blocked.
go run ./cmd/vmprim -demo-deadlock -recv-timeout 300ms \
	-postmortem-out "$tmpdir/postmortem.json" \
	-metrics-out "$tmpdir/metrics.prom" >"$tmpdir/postmortem.txt"
python3 - "$tmpdir/postmortem.json" <<'PYEOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["blocked"] == rep["p"] == 4, "not every proc blocked: %s" % rep
for ps in rep["procs"]:
    assert ps["wait"] == "recv" and ps["wait_dim"] >= 0, \
        "proc %d not blocked in recv" % ps["id"]
    vts = [ev["vt_us"] for ev in ps["events"]]
    assert vts == sorted(vts), "flight events out of VT order"
assert len(rep["links"]) == 4, "expected 4 occupied links"
print("post-mortem: %d/%d procs blocked, %d occupied links" %
      (rep["blocked"], rep["p"], len(rep["links"])))
PYEOF
grep -q '^vmprim_run_failures_total 1$' "$tmpdir/metrics.prom" || {
	echo "metrics.prom did not record the failed run" >&2
	exit 1
}

# Critical-path gate. The tracer's output is part of the simulated
# result, not a host-side diagnostic, so the same workload must
# produce bit-identical critical-path JSON at GOMAXPROCS 1 and the
# default (NumCPU). The document must also match the committed golden
# schema — downstream tooling parses these files.
GOMAXPROCS=1 go run ./cmd/vmprim -critpath E4 \
	-critpath-out "$tmpdir/critpath-gmp1.json" >/dev/null 2>&1
go run ./cmd/vmprim -critpath E4 \
	-critpath-out "$tmpdir/critpath-ncpu.json" >"$tmpdir/critpath.txt" 2>/dev/null
cmp "$tmpdir/critpath-gmp1.json" "$tmpdir/critpath-ncpu.json" || {
	echo "critical path differs between GOMAXPROCS 1 and NumCPU" >&2
	exit 1
}
python3 scripts/critpath_schema_check.py "$tmpdir/critpath-ncpu.json" scripts/critpath_schema.json

# Continuous-benchmark gate, now a GOMAXPROCS sweep: a fresh
# 1-iteration host run at GOMAXPROCS 1, 2, 4 and NumCPU must reproduce
# the committed snapshot's simulated times bit for bit at EVERY
# setting (-each-new-section diffs each sweep section against the
# gate). Host ns/op at -benchtime 1x is pure noise and stays
# informational (benchdiff gates it only under -gate-host).
go run ./cmd/hostbench -d 4 -n 64 -benchtime 1x -sweep 1,2,4,ncpu \
	-o "$tmpdir/bench-fresh.json" 2>/dev/null
go run ./cmd/benchdiff -old BENCH_2.json:gate -new "$tmpdir/bench-fresh.json" \
	-each-new-section

# Committed sweep gate: BENCH_3.json's [d4-|d8-]gomaxprocs-N sections
# must agree on simulated times within each group, and host ns/op at
# GOMAXPROCS=NumCPU (of the recording host) must not regress beyond
# 20% versus GOMAXPROCS=1 — parallelism must never be a slowdown.
go run ./cmd/benchdiff -sweep BENCH_3.json

# vmprimd smoke gate: the served observability plane must hand out the
# SAME simulated documents the CLI writes. Start the server, submit the
# E1 profile workload over HTTP, and byte-compare the served profile,
# Chrome trace and critical-path JSON against a direct `vmprim
# -profile E1` run — once with the server and CLI at GOMAXPROCS=1 and
# once at the host default — then validate the served critpath against
# the committed schema, check the per-run metrics match modulo the
# host-nondeterministic scheduler counters, drive a vmload mini-burst,
# and require a clean SIGTERM shutdown.
go build -o "$tmpdir/vmprimd" ./cmd/vmprimd
go build -o "$tmpdir/vmprim-cli" ./cmd/vmprim
go build -o "$tmpdir/vmload" ./cmd/vmload

vmprimd_pass() { # $1: pass name; $2: GOMAXPROCS value ("" = host default)
	pass=$1
	gmp=${2:-}
	pdir="$tmpdir/vmprimd-$pass"
	mkdir -p "$pdir"
	rm -f "$pdir/addr"
	GOMAXPROCS=$gmp "$tmpdir/vmprimd" -addr 127.0.0.1:0 -addr-file "$pdir/addr" \
		-workers 1 2>"$pdir/server.log" &
	srv_pid=$!
	for _ in $(seq 100); do
		[ -s "$pdir/addr" ] && break
		sleep 0.1
	done
	addr=$(cat "$pdir/addr")
	run_id=$(curl -sf -X POST "http://$addr/runs" -d '{"exp":"E1"}' \
		| python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
	state=$(curl -sf "http://$addr/runs/$run_id/wait?timeout=300s" \
		| python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
	[ "$state" = "done" ] || { echo "vmprimd($pass): run ended $state" >&2; exit 1; }
	curl -sf "http://$addr/runs/$run_id/profile" >"$pdir/profile.json"
	curl -sf "http://$addr/runs/$run_id/trace" >"$pdir/trace.json"
	curl -sf "http://$addr/runs/$run_id/critpath" >"$pdir/critpath.json"
	curl -sf "http://$addr/runs/$run_id/metrics" >"$pdir/metrics.json"
	curl -sfi "http://$addr/metrics" >"$pdir/scrape.txt"
	grep -qi '^content-type: text/plain; version=0.0.4' "$pdir/scrape.txt" || {
		echo "vmprimd($pass): /metrics Content-Type is not the 0.0.4 exposition" >&2
		exit 1
	}
	grep -q '^vmprimd_runs_done_total 1$' "$pdir/scrape.txt" || {
		echo "vmprimd($pass): scrape did not count the finished run" >&2
		exit 1
	}

	GOMAXPROCS=$gmp "$tmpdir/vmprim-cli" -profile E1 -json \
		-trace-out "$pdir/cli-trace.json" -critpath-out "$pdir/cli-critpath.json" \
		-metrics-out "$pdir/cli-metrics.json" >"$pdir/cli-profile.json" 2>/dev/null
	for artifact in profile trace critpath; do
		cmp "$pdir/$artifact.json" "$pdir/cli-$artifact.json" || {
			echo "vmprimd($pass): served $artifact differs from the CLI document" >&2
			exit 1
		}
	done
	python3 scripts/critpath_schema_check.py "$pdir/critpath.json" scripts/critpath_schema.json
	python3 - "$pdir/metrics.json" "$pdir/cli-metrics.json" <<'PYEOF'
import json, sys
# Host-scheduler and watchdog counters depend on goroutine interleaving
# by design; everything else in the per-run metrics is simulated truth
# and must match the CLI's fresh-machine snapshot exactly.
sched = {
    "vmprim_sched_recv_parks_total", "vmprim_sched_send_stalls_total",
    "vmprim_sched_wakeups_total", "vmprim_sched_max_parked_procs",
    "vmprim_watchdog_arms_total", "vmprim_watchdog_rearms_total",
}
def load(p):
    doc = json.load(open(p))
    return {m["name"]: m for m in doc["metrics"] if m["name"] not in sched}
served, cli = load(sys.argv[1]), load(sys.argv[2])
assert served.keys() == cli.keys(), \
    "metric sets differ: %s" % sorted(served.keys() ^ cli.keys())
for name in served:
    assert served[name] == cli[name], \
        "metric %s: served %r != cli %r" % (name, served[name], cli[name])
print("served per-run metrics: %d metrics identical to the CLI snapshot" % len(served))
PYEOF

	kill -TERM "$srv_pid"
	wait "$srv_pid" || { echo "vmprimd($pass): nonzero exit on SIGTERM" >&2; exit 1; }
	grep -q 'clean shutdown' "$pdir/server.log" || {
		echo "vmprimd($pass): no clean shutdown line in server log" >&2
		exit 1
	}
	echo "vmprimd($pass): served E1 artifacts byte-identical to CLI; clean shutdown"
}

vmprimd_pass gmp1 1
vmprimd_pass ncpu ""
cmp "$tmpdir/vmprimd-gmp1/profile.json" "$tmpdir/vmprimd-ncpu/profile.json" || {
	echo "served profile differs between GOMAXPROCS 1 and NumCPU" >&2
	exit 1
}

# vmload mini-burst: concurrent submissions against an in-process
# server must all complete. The committed BENCH_4.json records the
# full 1000-run session; this keeps the harness itself gated.
"$tmpdir/vmload" -runs 60 -c 8 -out "$tmpdir/bench4-smoke.json" 2>/dev/null
python3 - "$tmpdir/bench4-smoke.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
res = doc["results"]
assert res["completed"] == 60 and res["failed"] == 0, \
    "vmload smoke: %d/%d completed" % (res["completed"], 60)
lat = res["latency_us"]
assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"], "percentiles not ordered: %s" % lat
assert sum(res["histogram_counts"][-1:]) == 60, "histogram +Inf bucket != count"
print("vmload smoke: 60/60 runs, p50 %.0fus p95 %.0fus p99 %.0fus" %
      (lat["p50"], lat["p95"], lat["p99"]))
PYEOF

echo "check.sh: all clean"
