#!/bin/sh
# Pre-PR gate: formatting, module hygiene, vet, the vmlint static
# analyzers, build, full tests under the race detector (which also
# exercises the steady-state allocation guards in internal/hypercube
# and internal/core). Run from the repository root:
#
#	./scripts/check.sh
#
# Simulated results are deterministic, so any table change this script
# surfaces is a real behavioral change, not noise.
#
# Set CHECK_ARTIFACT_DIR to keep the produced artifacts (profile and
# trace JSON, the demo post-mortem, metrics, the fresh benchmark
# snapshot) instead of discarding them — CI uses this to upload them
# on failure.
set -eu

cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

# The module is dependency-free and must stay that way: tidy may not
# want to change go.mod.
if ! go mod tidy -diff >/dev/null 2>&1; then
	echo "go mod tidy would change go.mod/go.sum; run it and commit" >&2
	go mod tidy -diff >&2 || true
	exit 1
fi

go vet ./...
go build ./...

# Static allocation gate: the compiler's escape analysis must not
# report new heap escapes in the hot-path packages (hypercube,
# collective, core, flightrec) relative to the committed baseline.
# The dynamic AllocsPerRun guards only see the paths the benchmarks
# drive; this sees every function the compiler does.
./scripts/allocgate.sh

# vmlint: the repo's own analyzers (SPMD symmetry, span balance,
# buffer ownership, determinism). Build the tool once, then lint
# before spending time on tests — a lint finding is file:line:col
# actionable, a deadlocked test run is a 30s watchdog timeout.
vmlint_bin=$(mktemp)
go build -o "$vmlint_bin" ./cmd/vmlint
"$vmlint_bin" ./... || { rm -f "$vmlint_bin"; echo "vmlint failed" >&2; exit 1; }
# -diff must print nothing: a pending suggested fix is uncommitted
# mechanical work — run vmlint -fix and commit the result.
fixes=$("$vmlint_bin" -diff ./...) || { rm -f "$vmlint_bin"; echo "vmlint -diff failed" >&2; exit 1; }
if [ -n "$fixes" ]; then
	echo "vmlint -diff: pending suggested fixes; run vmlint -fix and commit:" >&2
	echo "$fixes" >&2
	rm -f "$vmlint_bin"
	exit 1
fi
# The same suite through the go vet driver: exercises the -vettool
# unit-checker protocol, with package facts (identity taint, buffer
# sinks, collective summaries) crossing packages through vetx files.
go vet -vettool="$vmlint_bin" ./... || { rm -f "$vmlint_bin"; echo "vmlint (vettool) failed" >&2; exit 1; }
rm -f "$vmlint_bin"

go test ./...
# Full internal tree under the race detector. This includes the
# GOMAXPROCS determinism stress (internal/bench TestGOMAXPROCSDeterminism
# plus the collective and router variants): the same E1–E5 workloads at
# GOMAXPROCS 1, 2 and NumCPU must produce bit-identical clocks, link
# loads, metrics folds and profile documents, with the race detector
# watching the host-parallel engine the whole time.
go test -race ./internal/...
# The profiler invariant tests (bit-identity, bucket reconciliation)
# under the race detector: the span recorder runs on every processor
# goroutine, so races here would be real simulator bugs.
go test -race -run 'Profile|Span|Congestion|LinkVolumes' ./internal/hypercube/ ./internal/obs/

# End-to-end profiled run: the JSON profile on stdout must parse, and
# the Chrome trace written next to it must parse, or the exporters
# regressed.
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
	mkdir -p "$CHECK_ARTIFACT_DIR"
	tmpdir=$CHECK_ARTIFACT_DIR
else
	tmpdir=$(mktemp -d)
	trap 'rm -rf "$tmpdir"' EXIT
fi
go run ./cmd/vmprim -profile E1 -json -trace-out "$tmpdir/trace.json" >"$tmpdir/profile.json"
python3 - "$tmpdir/profile.json" "$tmpdir/trace.json" <<'PYEOF'
import json, sys
prof = json.load(open(sys.argv[1]))
root = prof["spans"]
assert prof["p"] > 0 and root["name"] == "run" and root.get("children"), \
    "profile JSON missing span tree"
assert prof["bucket_skew_us"] == 0, "bucket reconciliation skew nonzero"
trace = json.load(open(sys.argv[2]))
assert trace["traceEvents"], "Chrome trace empty"
print("profiled run: %d procs, %d top-level spans, %d trace events" %
      (prof["p"], len(root["children"]), len(trace["traceEvents"])))
PYEOF

# End-to-end post-mortem: a deliberately deadlocked run must produce a
# structured report that names every processor's blocked receive, and
# the metrics snapshot must record the failed run. The command itself
# exits nonzero unless the report shows all procs blocked.
go run ./cmd/vmprim -demo-deadlock -recv-timeout 300ms \
	-postmortem-out "$tmpdir/postmortem.json" \
	-metrics-out "$tmpdir/metrics.prom" >"$tmpdir/postmortem.txt"
python3 - "$tmpdir/postmortem.json" <<'PYEOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["blocked"] == rep["p"] == 4, "not every proc blocked: %s" % rep
for ps in rep["procs"]:
    assert ps["wait"] == "recv" and ps["wait_dim"] >= 0, \
        "proc %d not blocked in recv" % ps["id"]
    vts = [ev["vt_us"] for ev in ps["events"]]
    assert vts == sorted(vts), "flight events out of VT order"
assert len(rep["links"]) == 4, "expected 4 occupied links"
print("post-mortem: %d/%d procs blocked, %d occupied links" %
      (rep["blocked"], rep["p"], len(rep["links"])))
PYEOF
grep -q '^vmprim_run_failures_total 1$' "$tmpdir/metrics.prom" || {
	echo "metrics.prom did not record the failed run" >&2
	exit 1
}

# Critical-path gate. The tracer's output is part of the simulated
# result, not a host-side diagnostic, so the same workload must
# produce bit-identical critical-path JSON at GOMAXPROCS 1 and the
# default (NumCPU). The document must also match the committed golden
# schema — downstream tooling parses these files.
GOMAXPROCS=1 go run ./cmd/vmprim -critpath E4 \
	-critpath-out "$tmpdir/critpath-gmp1.json" >/dev/null 2>&1
go run ./cmd/vmprim -critpath E4 \
	-critpath-out "$tmpdir/critpath-ncpu.json" >"$tmpdir/critpath.txt" 2>/dev/null
cmp "$tmpdir/critpath-gmp1.json" "$tmpdir/critpath-ncpu.json" || {
	echo "critical path differs between GOMAXPROCS 1 and NumCPU" >&2
	exit 1
}
python3 - "$tmpdir/critpath-ncpu.json" scripts/critpath_schema.json <<'PYEOF'
import json, sys

doc = json.load(open(sys.argv[1]))
schema = json.load(open(sys.argv[2]))
defs = schema.get("definitions", {})

def fail(path, msg):
    raise SystemExit("critpath schema: %s: %s" % (path or "/", msg))

def check(doc, sch, path=""):
    if "$ref" in sch:
        sch = defs[sch["$ref"].rsplit("/", 1)[1]]
    t = sch.get("type")
    if t == "object":
        if not isinstance(doc, dict):
            fail(path, "expected object, got %s" % type(doc).__name__)
        for key in sch.get("required", []):
            if key not in doc:
                fail(path, "missing required key %r" % key)
        props = sch.get("properties", {})
        for key, val in doc.items():
            if key in props:
                check(val, props[key], path + "/" + key)
            elif sch.get("additionalProperties") is False:
                fail(path, "unexpected key %r" % key)
    elif t == "array":
        if not isinstance(doc, list):
            fail(path, "expected array, got %s" % type(doc).__name__)
        for i, item in enumerate(doc):
            check(item, sch.get("items", {}), "%s[%d]" % (path, i))
    elif t == "integer":
        if not isinstance(doc, int) or isinstance(doc, bool):
            fail(path, "expected integer, got %r" % doc)
    elif t == "number":
        if not isinstance(doc, (int, float)) or isinstance(doc, bool):
            fail(path, "expected number, got %r" % doc)
    elif t == "string":
        if not isinstance(doc, str):
            fail(path, "expected string, got %r" % doc)
    elif t == "boolean":
        if not isinstance(doc, bool):
            fail(path, "expected boolean, got %r" % doc)
    if "enum" in sch and doc not in sch["enum"]:
        fail(path, "%r not one of %s" % (doc, sch["enum"]))
    if "minimum" in sch and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < sch["minimum"]:
        fail(path, "%r below minimum %s" % (doc, sch["minimum"]))

check(doc, schema)
total = sum(doc["buckets_us"].values())
assert abs(total - doc["makespan_us"]) == 0, \
    "path weights %r do not sum to makespan %r" % (total, doc["makespan_us"])
print("critpath: schema ok; makespan %.1f us over %d procs, %d conformance entries" %
      (doc["makespan_us"], doc["p"], len(doc["conformance"]["entries"])))
PYEOF

# Continuous-benchmark gate, now a GOMAXPROCS sweep: a fresh
# 1-iteration host run at GOMAXPROCS 1, 2, 4 and NumCPU must reproduce
# the committed snapshot's simulated times bit for bit at EVERY
# setting (-each-new-section diffs each sweep section against the
# gate). Host ns/op at -benchtime 1x is pure noise and stays
# informational (benchdiff gates it only under -gate-host).
go run ./cmd/hostbench -d 4 -n 64 -benchtime 1x -sweep 1,2,4,ncpu \
	-o "$tmpdir/bench-fresh.json" 2>/dev/null
go run ./cmd/benchdiff -old BENCH_2.json:gate -new "$tmpdir/bench-fresh.json" \
	-each-new-section

# Committed sweep gate: BENCH_3.json's [d4-|d8-]gomaxprocs-N sections
# must agree on simulated times within each group, and host ns/op at
# GOMAXPROCS=NumCPU (of the recording host) must not regress beyond
# 20% versus GOMAXPROCS=1 — parallelism must never be a slowdown.
go run ./cmd/benchdiff -sweep BENCH_3.json

echo "check.sh: all clean"
