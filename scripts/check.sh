#!/bin/sh
# Pre-PR gate: formatting, module hygiene, vet, the vmlint static
# analyzers, build, full tests under the race detector (which also
# exercises the steady-state allocation guards in internal/hypercube
# and internal/core). Run from the repository root:
#
#	./scripts/check.sh
#
# Simulated results are deterministic, so any table change this script
# surfaces is a real behavioral change, not noise.
set -eu

cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

# The module is dependency-free and must stay that way: tidy may not
# want to change go.mod.
if ! go mod tidy -diff >/dev/null 2>&1; then
	echo "go mod tidy would change go.mod/go.sum; run it and commit" >&2
	go mod tidy -diff >&2 || true
	exit 1
fi

go vet ./...
go build ./...

# vmlint: the repo's own analyzers (SPMD symmetry, span balance,
# buffer ownership, determinism). Build the tool once, then lint
# before spending time on tests — a lint finding is file:line:col
# actionable, a deadlocked test run is a 30s watchdog timeout.
vmlint_bin=$(mktemp)
go build -o "$vmlint_bin" ./cmd/vmlint
"$vmlint_bin" ./... || { rm -f "$vmlint_bin"; echo "vmlint failed" >&2; exit 1; }
rm -f "$vmlint_bin"

go test ./...
go test -race ./internal/...
# The profiler invariant tests (bit-identity, bucket reconciliation)
# under the race detector: the span recorder runs on every processor
# goroutine, so races here would be real simulator bugs.
go test -race -run 'Profile|Span|Congestion|LinkVolumes' ./internal/hypercube/ ./internal/obs/

# End-to-end profiled run: the JSON profile on stdout must parse, and
# the Chrome trace written next to it must parse, or the exporters
# regressed.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/vmprim -profile E1 -json -trace-out "$tmpdir/trace.json" >"$tmpdir/profile.json"
python3 - "$tmpdir/profile.json" "$tmpdir/trace.json" <<'PYEOF'
import json, sys
prof = json.load(open(sys.argv[1]))
root = prof["spans"]
assert prof["p"] > 0 and root["name"] == "run" and root.get("children"), \
    "profile JSON missing span tree"
assert prof["bucket_skew_us"] == 0, "bucket reconciliation skew nonzero"
trace = json.load(open(sys.argv[2]))
assert trace["traceEvents"], "Chrome trace empty"
print("profiled run: %d procs, %d top-level spans, %d trace events" %
      (prof["p"], len(root["children"]), len(trace["traceEvents"])))
PYEOF

echo "check.sh: all clean"
