#!/bin/sh
# Pre-PR gate: formatting, vet, build, full tests under the race
# detector (which also exercises the steady-state allocation guards in
# internal/hypercube and internal/core). Run from the repository root:
#
#	./scripts/check.sh
#
# Simulated results are deterministic, so any table change this script
# surfaces is a real behavioral change, not noise.
set -eu

cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/...

echo "check.sh: all clean"
