#!/usr/bin/env bash
# allocgate.sh — static allocation gate for the hot-path packages.
#
# The engine's steady-state claim (ROADMAP: "allocation-free in hot
# paths") is enforced dynamically by testing.AllocsPerRun in a few
# benchmarks, but nothing stopped a PR from quietly adding a heap
# escape to a path those benchmarks miss. This gate closes that hole
# statically: it parses the compiler's escape analysis (`go build
# -gcflags=-m`) for the hot-path packages, aggregates escape counts
# per file, and fails if any file gained escapes over the committed
# baseline (scripts/allocgate_baseline.txt).
#
# Per-file counts, not per-line: line numbers churn with every edit,
# but "this file now heap-allocates more than it used to" is exactly
# the signal we want a human to look at. Escapes that merely move
# within a file stay invisible; new ones anywhere fail the gate.
#
# Usage:
#   scripts/allocgate.sh            # compare against the baseline
#   scripts/allocgate.sh -update    # rewrite the baseline from HEAD
#
# The escape output is replayed from the build cache, so a warm run
# costs almost nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=(./internal/hypercube ./internal/collective ./internal/core ./internal/flightrec)
BASELINE=scripts/allocgate_baseline.txt

# current prints "file count" per source file, sorted, for every
# "escapes to heap" / "moved to heap" diagnostic in the gated
# packages. -gcflags without a pattern applies only to the packages
# named on the command line, so dependencies don't pollute the count.
current() {
  go build -gcflags=-m "${PKGS[@]}" 2>&1 |
    grep -E 'escapes to heap|moved to heap' |
    cut -d: -f1 |
    sort | uniq -c |
    awk '{ print $2, $1 }'
}

if [[ "${1:-}" == "-update" ]]; then
  {
    echo "# Per-file heap-escape counts in the hot-path packages,"
    echo "# from 'go build -gcflags=-m' (escapes to heap + moved to heap)."
    echo "# Regenerate with: scripts/allocgate.sh -update"
    current
  } > "$BASELINE"
  echo "allocgate: baseline updated ($(grep -cv '^#' "$BASELINE") files)"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "allocgate: missing $BASELINE — run scripts/allocgate.sh -update" >&2
  exit 1
fi

now=$(mktemp)
trap 'rm -f "$now"' EXIT
current > "$now"

fail=0
improved=0
while read -r file count; do
  base=$(awk -v f="$file" '$1 == f { print $2 }' "$BASELINE")
  base=${base:-0}
  if (( count > base )); then
    echo "allocgate: $file has $count heap escapes, baseline allows $base (+$((count - base)))" >&2
    fail=1
  elif (( count < base )); then
    improved=1
  fi
done < "$now"

# A file dropping out of the output entirely is also an improvement.
while read -r file base; do
  if ! grep -q "^$file " "$now"; then
    improved=1
  fi
done < <(grep -v '^#' "$BASELINE")

if (( fail )); then
  echo "allocgate: new heap escapes in hot-path packages — inspect with" >&2
  echo "  go build -gcflags=-m ${PKGS[*]} |& grep 'to heap'" >&2
  echo "and either remove the allocation or re-baseline deliberately with scripts/allocgate.sh -update" >&2
  exit 1
fi
if (( improved )); then
  echo "allocgate: escape counts improved — consider ratcheting: scripts/allocgate.sh -update"
fi
echo "allocgate: ok (no new heap escapes in ${PKGS[*]})"
