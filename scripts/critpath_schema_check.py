#!/usr/bin/env python3
"""Validate a critical-path JSON document against the committed schema.

Usage: critpath_schema_check.py <critpath.json> <critpath_schema.json>

Used by scripts/check.sh for both the CLI-written document and the one
vmprimd serves: downstream tooling parses these files, so both paths
must stay on schema. Also asserts the semantic invariant the schema
cannot express: the bucket weights sum exactly to the makespan.
"""
import json
import sys

doc = json.load(open(sys.argv[1]))
schema = json.load(open(sys.argv[2]))
defs = schema.get("definitions", {})


def fail(path, msg):
    raise SystemExit("critpath schema: %s: %s" % (path or "/", msg))


def check(doc, sch, path=""):
    if "$ref" in sch:
        sch = defs[sch["$ref"].rsplit("/", 1)[1]]
    t = sch.get("type")
    if t == "object":
        if not isinstance(doc, dict):
            fail(path, "expected object, got %s" % type(doc).__name__)
        for key in sch.get("required", []):
            if key not in doc:
                fail(path, "missing required key %r" % key)
        props = sch.get("properties", {})
        for key, val in doc.items():
            if key in props:
                check(val, props[key], path + "/" + key)
            elif sch.get("additionalProperties") is False:
                fail(path, "unexpected key %r" % key)
    elif t == "array":
        if not isinstance(doc, list):
            fail(path, "expected array, got %s" % type(doc).__name__)
        for i, item in enumerate(doc):
            check(item, sch.get("items", {}), "%s[%d]" % (path, i))
    elif t == "integer":
        if not isinstance(doc, int) or isinstance(doc, bool):
            fail(path, "expected integer, got %r" % doc)
    elif t == "number":
        if not isinstance(doc, (int, float)) or isinstance(doc, bool):
            fail(path, "expected number, got %r" % doc)
    elif t == "string":
        if not isinstance(doc, str):
            fail(path, "expected string, got %r" % doc)
    elif t == "boolean":
        if not isinstance(doc, bool):
            fail(path, "expected boolean, got %r" % doc)
    if "enum" in sch and doc not in sch["enum"]:
        fail(path, "%r not one of %s" % (doc, sch["enum"]))
    if "minimum" in sch and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < sch["minimum"]:
        fail(path, "%r below minimum %s" % (doc, sch["minimum"]))


check(doc, schema)
total = sum(doc["buckets_us"].values())
assert abs(total - doc["makespan_us"]) == 0, \
    "path weights %r do not sum to makespan %r" % (total, doc["makespan_us"])
print("critpath: schema ok; makespan %.1f us over %d procs, %d conformance entries" %
      (doc["makespan_us"], doc["p"], len(doc["conformance"]["entries"])))
