// Quickstart: build a simulated hypercube, distribute a small matrix,
// and run each of the four vector-matrix primitives — Extract, Insert,
// Distribute, Reduce — printing the results and the simulated machine
// time of each operation.
package main

import (
	"fmt"
	"log"

	"vmprim"
)

func main() {
	// A 16-processor Boolean cube with Connection Machine-like cost
	// parameters, carved into a 4x4 processor grid.
	m := vmprim.NewMachine(4, vmprim.CM2())
	g := vmprim.SplitFor(m.Dim(), 8, 8)
	fmt.Printf("machine: %d processors (dimension-%d cube), grid %dx%d\n\n",
		m.P(), m.Dim(), g.PRows(), g.PCols())

	// An 8x8 matrix with a[i][j] = i*10 + j, block-embedded.
	dm := vmprim.NewDense(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			dm.Set(i, j, float64(i*10+j))
		}
	}
	a, err := vmprim.FromDense(g, dm, vmprim.Block, vmprim.Block)
	if err != nil {
		log.Fatal(err)
	}

	// Host-visible result containers.
	row3, err := vmprim.NewVector(g, 8, vmprim.RowAligned, vmprim.Block, a.RMap.CoordOf(3), true)
	if err != nil {
		log.Fatal(err)
	}
	colSums, err := vmprim.NewVector(g, 8, vmprim.RowAligned, vmprim.Block, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	rowMax, err := vmprim.NewVector(g, 8, vmprim.ColAligned, vmprim.Block, 0, true)
	if err != nil {
		log.Fatal(err)
	}

	// Primitive 1+3 — Extract row 3 with replication (Extract fused
	// with Distribute: every grid row receives a copy).
	if _, err := m.Run(func(p *vmprim.Proc) {
		e := vmprim.NewEnv(p, g)
		e.StoreVec(row3, e.ExtractRow(a, 3, true))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Extract(A, row 3) = %v\n", row3.ToSlice())
	fmt.Printf("  simulated time: %.0f us\n\n", float64(m.Elapsed()))

	// Primitive 2 — Insert: overwrite row 6 with the extracted row.
	if _, err := m.Run(func(p *vmprim.Proc) {
		e := vmprim.NewEnv(p, g)
		e.InsertRow(a, row3, 6)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Insert(A, row 6): row 6 is now %v\n", a.ToDense().Row(6))
	fmt.Printf("  simulated time: %.0f us\n\n", float64(m.Elapsed()))

	// Primitive 4 — Reduce along both axes.
	if _, err := m.Run(func(p *vmprim.Proc) {
		e := vmprim.NewEnv(p, g)
		e.StoreVec(colSums, e.ReduceRows(a, vmprim.OpSum, true))
		e.StoreVec(rowMax, e.ReduceCols(a, vmprim.OpMax, true))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reduce(A, rows, +)  = %v  (column sums)\n", colSums.ToSlice())
	fmt.Printf("Reduce(A, cols, max) = %v  (row maxima)\n", rowMax.ToSlice())
	fmt.Printf("  simulated time: %.0f us\n\n", float64(m.Elapsed()))

	// The primitives compose: y = x*A as Distribute, elementwise
	// multiply, Reduce — one Machine.Run, all communication on cube
	// edges, every flop and word charged to the virtual clock.
	x := []float64{1, 0, -1, 0, 2, 0, -2, 0}
	y, elapsed, stats, err := vmprim.RunVecMat(m, dm, x, vmprim.MatvecPrimitive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x*A via primitives  = %v\n", y)
	fmt.Printf("  simulated time %.0f us, %d messages, %d words, %d flops\n",
		float64(elapsed), stats.Messages, stats.Words, stats.Flops)
}
