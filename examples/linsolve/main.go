// Linear solve: a discretized 1-D reaction-diffusion equation
// -u” + c u = f on a grid of n points, solved by distributed Gaussian
// elimination with partial pivoting — the paper's second application —
// and cross-checked against the serial solver. The same system is then
// solved with the naive router-based kernel to show the simulated-time
// gap the primitives buy.
package main

import (
	"fmt"
	"log"
	"math"

	"vmprim"
)

func main() {
	const n = 48

	// Tridiagonal stiffness matrix (dense storage: the paper's routine
	// is a dense solver) and a smooth forcing term.
	a := vmprim.NewDense(n, n)
	b := make([]float64, n)
	h := 1.0 / float64(n+1)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2/(h*h)+1)
		if i > 0 {
			a.Set(i, i-1, -1/(h*h))
		}
		if i < n-1 {
			a.Set(i, i+1, -1/(h*h))
		}
		xi := float64(i+1) * h
		b[i] = math.Sin(math.Pi * xi)
	}

	m := vmprim.NewMachine(6, vmprim.CM2())
	fmt.Printf("solving a %dx%d system on %d processors\n\n", n, n, m.P())

	x, tPrim, err := vmprim.SolveGauss(m, a, b, vmprim.DefaultGaussOpts())
	if err != nil {
		log.Fatal(err)
	}

	// Residual and serial cross-check.
	serialX, err := vmprim.SerialGaussSolve(a, b)
	if err != nil {
		log.Fatal(err)
	}
	var resid, diff float64
	for i := 0; i < n; i++ {
		r := -b[i]
		for j := 0; j < n; j++ {
			r += a.At(i, j) * x[j]
		}
		resid += r * r
		diff = math.Max(diff, math.Abs(x[i]-serialX[i]))
	}
	fmt.Printf("primitive-based elimination:\n")
	fmt.Printf("  simulated time:        %.0f us\n", float64(tPrim))
	fmt.Printf("  ||Ax-b||_2:            %.2e\n", math.Sqrt(resid))
	fmt.Printf("  max |x - x_serial|:    %.2e\n\n", diff)

	opts := vmprim.DefaultGaussOpts()
	opts.Naive = true
	_, tNaive, err := vmprim.SolveGauss(m, a, b, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive (router, element-at-a-time) elimination:\n")
	fmt.Printf("  simulated time:        %.0f us\n", float64(tNaive))
	fmt.Printf("  naive/primitive ratio: %.1fx\n\n", float64(tNaive)/float64(tPrim))

	fmt.Printf("u(0.5) = %.6f (continuum solution of -u''+u = sin(pi x) is %.6f)\n",
		x[n/2-1], math.Sin(math.Pi*0.5)/(math.Pi*math.Pi+1))
}
