// Steady-state heat: the 2-D Poisson equation -Δu = f on an s x s
// interior grid (5-point stencil, Dirichlet boundaries), assembled as
// a dense SPD system and solved two ways on the simulated hypercube —
// by the paper's direct Gaussian elimination and by the library's
// conjugate-gradient extension — comparing answers and simulated
// machine times.
package main

import (
	"fmt"
	"log"
	"math"

	"vmprim"
)

func main() {
	const s = 8 // interior grid side; n = s*s unknowns
	n := s * s

	// 5-point Laplacian (dense storage) and a hot-spot source.
	a := vmprim.NewDense(n, n)
	b := make([]float64, n)
	idx := func(i, j int) int { return i*s + j }
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			k := idx(i, j)
			a.Set(k, k, 4)
			if i > 0 {
				a.Set(k, idx(i-1, j), -1)
			}
			if i < s-1 {
				a.Set(k, idx(i+1, j), -1)
			}
			if j > 0 {
				a.Set(k, idx(i, j-1), -1)
			}
			if j < s-1 {
				a.Set(k, idx(i, j+1), -1)
			}
		}
	}
	// Heat source in the lower-left quadrant.
	b[idx(s/4, s/4)] = 1

	m := vmprim.NewMachine(6, vmprim.CM2())
	fmt.Printf("steady-state heat on a %dx%d grid (%d unknowns), %d processors\n\n", s, s, n, m.P())

	xg, tGauss, err := vmprim.SolveGauss(m, a, b, vmprim.DefaultGaussOpts())
	if err != nil {
		log.Fatal(err)
	}
	res, tCG, err := vmprim.SolveCG(m, a, b, vmprim.CGOpts{Tol: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("CG did not converge: %+v", res)
	}
	maxDiff := 0.0
	for i := range xg {
		maxDiff = math.Max(maxDiff, math.Abs(xg[i]-res.X[i]))
	}

	fmt.Printf("direct (Gaussian elimination): %9.0f simulated us\n", float64(tGauss))
	fmt.Printf("iterative (CG, %2d iterations): %9.0f simulated us\n", res.Iterations, float64(tCG))
	fmt.Printf("agreement: max |x_GE - x_CG| = %.2e, CG residual %.2e\n\n", maxDiff, res.Residual)

	fmt.Println("temperature field (x100):")
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			fmt.Printf("%5.1f", 100*res.X[idx(i, j)])
		}
		fmt.Println()
	}
	if maxDiff > 1e-6 {
		log.Fatal("solvers disagree")
	}
}
