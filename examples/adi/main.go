// Alternating Direction Implicit (ADI) time stepping for the 2-D heat
// equation u_t = Δu — the method the tridiagonal-solver literature
// around the paper was written for. Each time step solves one implicit
// tridiagonal system per grid row, then one per grid column; the s
// independent systems of each half step go through the batch solver,
// which partitions whole systems over the processors (the
// "embarrassingly parallel case" the literature proves optimal). The
// example checks the discrete maximum principle (values stay within
// the initial bounds) and the symmetry of the evolving field.
package main

import (
	"fmt"
	"log"
	"math"

	"vmprim"
)

const (
	s     = 16  // grid side
	dt    = 0.1 // time step
	steps = 5   // time steps
	h     = 1.0 // grid spacing
)

func main() {
	m := vmprim.NewMachine(4, vmprim.CM2())

	// Initial condition: a centered hot square on a cold field,
	// Dirichlet zero boundary outside the grid.
	u := make([][]float64, s)
	for i := range u {
		u[i] = make([]float64, s)
	}
	for i := s/2 - 2; i < s/2+2; i++ {
		for j := s/2 - 2; j < s/2+2; j++ {
			u[i][j] = 100
		}
	}
	fmt.Printf("ADI heat diffusion on a %dx%d grid, %d processors, %d steps of dt=%.2f\n\n",
		s, s, m.P(), steps, dt)
	fmt.Printf("t=0: total heat %.1f, max %.1f\n", total(u), maxOf(u))

	r := dt / (2 * h * h) // half-step diffusion number
	sys := func(d []float64) vmprim.TridiagSystem {
		return vmprim.TridiagSystem{
			A: constVec(-r, s), B: constVec(1+2*r, s), C: constVec(-r, s), D: d,
		}
	}
	var simTime vmprim.Time
	for step := 0; step < steps; step++ {
		// Half step 1: implicit in x (rows), explicit in y — one
		// independent tridiagonal system per row, solved as a batch.
		batch := make([]vmprim.TridiagSystem, s)
		for i := 0; i < s; i++ {
			d := make([]float64, s)
			for j := 0; j < s; j++ {
				d[j] = u[i][j] + r*(get(u, i-1, j)-2*u[i][j]+get(u, i+1, j))
			}
			batch[i] = sys(d)
		}
		rows, el, err := vmprim.SolveTridiagBatch(m, batch)
		if err != nil {
			log.Fatal(err)
		}
		simTime += el
		u = rows
		// Half step 2: implicit in y (columns), explicit in x.
		for j := 0; j < s; j++ {
			d := make([]float64, s)
			for i := 0; i < s; i++ {
				d[i] = u[i][j] + r*(get(u, i, j-1)-2*u[i][j]+get(u, i, j+1))
			}
			batch[j] = sys(d)
		}
		cols, el2, err := vmprim.SolveTridiagBatch(m, batch)
		if err != nil {
			log.Fatal(err)
		}
		simTime += el2
		next := blank()
		for j := 0; j < s; j++ {
			for i := 0; i < s; i++ {
				next[i][j] = cols[j][i]
			}
		}
		u = next
		fmt.Printf("t=%.1f: total heat %.1f, max %.1f\n", float64(step+1)*dt, total(u), maxOf(u))
	}

	fmt.Printf("\nsimulated machine time across %d batched half-steps (%d systems): %.0f us\n",
		2*steps, 2*s*steps, float64(simTime))

	// Sanity: maximum principle and preserved symmetry.
	if maxOf(u) > 100+1e-9 || minOf(u) < -1e-9 {
		log.Fatalf("maximum principle violated: [%v, %v]", minOf(u), maxOf(u))
	}
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if math.Abs(u[i][j]-u[s-1-i][s-1-j]) > 1e-8 {
				log.Fatalf("symmetry broken at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("maximum principle and central symmetry verified")
}

func blank() [][]float64 {
	out := make([][]float64, s)
	for i := range out {
		out[i] = make([]float64, s)
	}
	return out
}

func constVec(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func get(u [][]float64, i, j int) float64 {
	if i < 0 || i >= s || j < 0 || j >= s {
		return 0 // Dirichlet boundary
	}
	return u[i][j]
}

func total(u [][]float64) float64 {
	t := 0.0
	for i := range u {
		for j := range u[i] {
			t += u[i][j]
		}
	}
	return t
}

func maxOf(u [][]float64) float64 {
	mx := math.Inf(-1)
	for i := range u {
		for j := range u[i] {
			mx = math.Max(mx, u[i][j])
		}
	}
	return mx
}

func minOf(u [][]float64) float64 {
	mn := math.Inf(1)
	for i := range u {
		for j := range u[i] {
			mn = math.Min(mn, u[i][j])
		}
	}
	return mn
}
