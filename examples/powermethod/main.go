// Power method: the dominant eigenvalue and eigenvector of a symmetric
// positive-definite matrix by repeated distributed vector-matrix
// multiplication. Each iteration composes the primitives — the fused
// Distribute/multiply/Reduce matvec, a Reduce for the norm, an
// elementwise scale, and a Realign (the embedding change a primitive
// may imply: y comes back row-aligned, the next multiply needs it
// col-aligned).
package main

import (
	"fmt"
	"log"
	"math"

	"vmprim"
)

func main() {
	const n = 64
	const iterations = 40

	// A symmetric positive-definite matrix with a known dominant
	// direction: A = I*2 + u u^T / n scaled up, plus a mild off-diagonal
	// coupling.
	dm := vmprim.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u := math.Sin(float64(i+1) * 0.17)
			v := math.Sin(float64(j+1) * 0.17)
			dm.Set(i, j, 8*u*v/float64(n))
			if i == j {
				dm.Set(i, j, dm.At(i, j)+2)
			}
		}
	}

	m := vmprim.NewMachine(6, vmprim.CM2())
	g := vmprim.SplitFor(m.Dim(), n, n)
	a, err := vmprim.FromDense(g, dm, vmprim.Block, vmprim.Block)
	if err != nil {
		log.Fatal(err)
	}

	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = 1
	}
	xv, err := vmprim.VectorFromSlice(g, x0, vmprim.ColAligned, vmprim.Block, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	eigvec, err := vmprim.NewVector(g, n, vmprim.ColAligned, vmprim.Block, 0, false)
	if err != nil {
		log.Fatal(err)
	}

	var lambda float64
	if _, err := m.Run(func(p *vmprim.Proc) {
		e := vmprim.NewEnv(p, g)
		x := xv
		var est float64
		for it := 0; it < iterations; it++ {
			// y = x*A (A symmetric, so this is also A*x).
			y := vmprim.VecMatKernel(e, a, x, vmprim.MatvecFused)
			// lambda estimate: ||y||_inf via Reduce, then normalize.
			absMax := e.ReduceVec(mapAbs(e, y), vmprim.OpMax)
			est = absMax
			inv := 1 / absMax
			e.MapVec(y, func(_ int, v float64) float64 { return v * inv }, 1)
			// Embedding change: the result is row-aligned, the next
			// multiply wants it col-aligned.
			x = e.Realign(y, vmprim.ColAligned, vmprim.Block, 0, false)
		}
		e.StoreVec(eigvec, x)
		if p.ID() == 0 {
			lambda = est
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Serial cross-check: one more multiply on the host.
	xs := eigvec.ToSlice()
	ys := vmprim.SerialVecMatMul(xs, dm)
	num, den := 0.0, 0.0
	for i := range xs {
		num += xs[i] * ys[i]
		den += xs[i] * xs[i]
	}
	rayleigh := num / den

	fmt.Printf("power method on a %dx%d SPD matrix, %d processors, %d iterations\n",
		n, n, m.P(), iterations)
	fmt.Printf("  dominant eigenvalue (power estimate):   %.6f\n", lambda)
	fmt.Printf("  dominant eigenvalue (serial Rayleigh):  %.6f\n", rayleigh)
	fmt.Printf("  simulated machine time: %.0f us (%.1f us/iteration)\n",
		float64(m.Elapsed()), float64(m.Elapsed())/iterations)
	if math.Abs(lambda-rayleigh) > 1e-6*math.Abs(rayleigh) {
		log.Fatalf("estimates disagree: %v vs %v", lambda, rayleigh)
	}
}

// mapAbs returns a copy of v with absolute values (an elementwise
// primitive application; the copy keeps the iteration's y intact).
func mapAbs(e *vmprim.Env, v *vmprim.Vector) *vmprim.Vector {
	w := e.CopyVec(v)
	e.MapVec(w, func(_ int, x float64) float64 { return math.Abs(x) }, 1)
	return w
}
