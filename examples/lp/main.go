// Production planning: a small factory LP — choose product quantities
// to maximize profit under machine-hour, labor and material limits —
// solved with the distributed simplex algorithm, the paper's third
// application. The distributed solve follows the identical pivot
// sequence as the serial reference, which the example verifies.
package main

import (
	"fmt"
	"log"
	"math"

	"vmprim"
)

func main() {
	products := []string{"widgets", "gadgets", "sprockets", "flanges"}
	resources := []string{"machine-hours", "labor-hours", "steel (kg)"}

	// Profit per unit.
	c := []float64{5, 4, 6, 3}
	// Resource consumption per unit produced.
	a := vmprim.DenseFromRows([][]float64{
		{2, 3, 4, 1}, // machine-hours
		{3, 1, 2, 2}, // labor-hours
		{4, 3, 5, 1}, // steel
	})
	// Available amounts.
	b := []float64{240, 200, 360}

	m := vmprim.NewMachine(4, vmprim.CM2())
	res, elapsed, err := vmprim.SolveSimplex(m, c, a, b, vmprim.DefaultSimplexOpts())
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != vmprim.Optimal {
		log.Fatalf("unexpected status: %v", res.Status)
	}

	fmt.Printf("production plan (distributed simplex, %d processors, %d pivots, %.0f simulated us):\n",
		m.P(), res.Iterations, float64(elapsed))
	for j, name := range products {
		fmt.Printf("  %-10s %8.2f units\n", name, res.X[j])
	}
	fmt.Printf("  profit     %8.2f\n\n", res.Z)

	fmt.Println("resource usage:")
	for i, name := range resources {
		used := 0.0
		for j := range products {
			used += a.At(i, j) * res.X[j]
		}
		fmt.Printf("  %-14s %7.2f of %7.2f\n", name, used, b[i])
	}

	// The distributed and serial solvers must pivot identically.
	serialRes, err := vmprim.SerialSolveLP(c, a, b, 1000)
	if err != nil {
		log.Fatal(err)
	}
	if serialRes.Iterations != res.Iterations || math.Abs(serialRes.Z-res.Z) > 1e-9 {
		log.Fatalf("serial disagreement: %d pivots z=%v vs %d pivots z=%v",
			serialRes.Iterations, serialRes.Z, res.Iterations, res.Z)
	}
	fmt.Printf("\nverified against the serial simplex: same %d pivots, same objective\n", res.Iterations)
}
