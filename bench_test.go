package vmprim

// One benchmark per table/figure of the reconstructed evaluation (see
// DESIGN.md). Each benchmark regenerates its experiment through the
// internal/bench harness and prints the table once, so the output of
//
//	go test -bench . -benchmem
//
// contains every row EXPERIMENTS.md records. Benchmarks measure host
// wall time per experiment; the tables themselves carry the simulated
// machine times, which are deterministic and host-independent.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"vmprim/internal/bench"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && last != nil {
		fmt.Fprintln(os.Stdout)
		last.Fprint(os.Stdout)
	}
}

func BenchmarkE1Primitives(b *testing.B) { runExperiment(b, "E1") }
func BenchmarkE2Scaling(b *testing.B)    { runExperiment(b, "E2") }
func BenchmarkE3Matvec(b *testing.B)     { runExperiment(b, "E3") }
func BenchmarkE4Gauss(b *testing.B)      { runExperiment(b, "E4") }
func BenchmarkE5Simplex(b *testing.B)    { runExperiment(b, "E5") }
func BenchmarkF1Speedup(b *testing.B)    { runExperiment(b, "F1") }
func BenchmarkF2Efficiency(b *testing.B) { runExperiment(b, "F2") }
func BenchmarkF3Embedding(b *testing.B)  { runExperiment(b, "F3") }
func BenchmarkA1Ports(b *testing.B)      { runExperiment(b, "A1") }
func BenchmarkA2Broadcast(b *testing.B)  { runExperiment(b, "A2") }
func BenchmarkA3Cyclic(b *testing.B)     { runExperiment(b, "A3") }

// Micro-benchmarks of the individual primitives at a fixed
// configuration (d=8, 512x512), reporting simulated machine time per
// operation alongside the host time testing.B measures.

func primitiveBench(b *testing.B, body func(e *core.Env, a *core.Matrix)) {
	b.Helper()
	const d, n = 8, 512
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		b.Fatal(err)
	}
	g := embed.SplitFor(d, n, n)
	a, err := core.FromDense(g, bench.RandMat(1, n, n), embed.Block, embed.Block)
	if err != nil {
		b.Fatal(err)
	}
	var sim costmodel.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elapsed, err := m.Run(func(p *hypercube.Proc) {
			body(core.NewEnv(p, g), a)
		})
		if err != nil {
			b.Fatal(err)
		}
		sim = elapsed
	}
	b.ReportMetric(float64(sim), "sim-us/op")
}

func BenchmarkPrimitiveExtractRow(b *testing.B) {
	primitiveBench(b, func(e *core.Env, a *core.Matrix) { e.ExtractRow(a, a.Rows/2, true) })
}

func BenchmarkPrimitiveInsertRow(b *testing.B) {
	primitiveBench(b, func(e *core.Env, a *core.Matrix) {
		v := e.ExtractRow(a, 0, false)
		e.InsertRow(a, v, a.Rows/2)
	})
}

func BenchmarkPrimitiveDistribute(b *testing.B) {
	primitiveBench(b, func(e *core.Env, a *core.Matrix) {
		v := e.ExtractRow(a, 0, false)
		e.Distribute(v)
	})
}

func BenchmarkPrimitiveReduceRows(b *testing.B) {
	primitiveBench(b, func(e *core.Env, a *core.Matrix) { e.ReduceRows(a, core.OpSum, true) })
}

func BenchmarkPrimitiveReduceColLoc(b *testing.B) {
	primitiveBench(b, func(e *core.Env, a *core.Matrix) {
		e.ReduceColLoc(a, a.Cols/2, 0, a.Rows, core.LocMaxAbs)
	})
}

func BenchmarkPrimitiveTranspose(b *testing.B) {
	primitiveBench(b, func(e *core.Env, a *core.Matrix) { e.Transpose(a) })
}

func BenchmarkX1MatMul(b *testing.B)          { runExperiment(b, "X1") }
func BenchmarkX2DirectIterative(b *testing.B) { runExperiment(b, "X2") }

func BenchmarkA4AllPort(b *testing.B) { runExperiment(b, "A4") }

func BenchmarkX3Tridiag(b *testing.B) { runExperiment(b, "X3") }
